package serve

import (
	"fmt"
	"strconv"
	"strings"

	"gcolor/internal/gen"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// ParseGraphSpec builds a graph from a compact generator spec, the form
// gcolord's /color endpoint and gcload's workload mixes use to reference
// graphs without uploading them. Specs are colon-separated:
//
//	rmat:<scale>:<edgefactor>[:seed]   Graph500 R-MAT
//	gnm:<n>:<m>[:seed]                 uniform Erdős–Rényi G(n,m)
//	grid:<rows>:<cols>                 2-D 4-point mesh
//	ws:<n>:<k>:<beta100>[:seed]        Watts–Strogatz (beta in percent)
//	ba:<n>:<m>[:seed]                  Barabási–Albert
//	complete:<n>  star:<n>  path:<n>  cycle:<n>
//
// The same spec always yields the same graph (generators are seeded and
// deterministic), which is what makes spec-addressed requests cacheable.
func ParseGraphSpec(spec string) (*graph.Graph, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	kind := parts[0]
	argv := parts[1:]
	atoi := func(i int, name string) (int, error) {
		if i >= len(argv) {
			return 0, fmt.Errorf("serve: graph spec %q missing %s", spec, name)
		}
		v, err := strconv.Atoi(argv[i])
		if err != nil {
			return 0, fmt.Errorf("serve: graph spec %q: bad %s: %v", spec, name, err)
		}
		return v, nil
	}
	opt := func(i, def int) int {
		if i >= len(argv) {
			return def
		}
		if v, err := strconv.Atoi(argv[i]); err == nil {
			return v
		}
		return def
	}
	switch kind {
	case "rmat":
		scale, err := atoi(0, "scale")
		if err != nil {
			return nil, err
		}
		ef, err := atoi(1, "edgefactor")
		if err != nil {
			return nil, err
		}
		if scale < 0 || scale > 22 {
			return nil, fmt.Errorf("serve: rmat scale %d out of range [0,22]", scale)
		}
		return gen.RMAT(scale, ef, gen.Graph500, int64(opt(2, 1))), nil
	case "gnm":
		n, err := atoi(0, "n")
		if err != nil {
			return nil, err
		}
		m, err := atoi(1, "m")
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1<<22 {
			return nil, fmt.Errorf("serve: gnm n %d out of range", n)
		}
		return gen.GNM(n, m, int64(opt(2, 1))), nil
	case "grid":
		rows, err := atoi(0, "rows")
		if err != nil {
			return nil, err
		}
		cols, err := atoi(1, "cols")
		if err != nil {
			return nil, err
		}
		if rows < 0 || cols < 0 || rows*cols > 1<<22 {
			return nil, fmt.Errorf("serve: grid %dx%d out of range", rows, cols)
		}
		return gen.Grid2D(rows, cols), nil
	case "ws":
		n, err := atoi(0, "n")
		if err != nil {
			return nil, err
		}
		k, err := atoi(1, "k")
		if err != nil {
			return nil, err
		}
		beta, err := atoi(2, "beta100")
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1<<22 {
			return nil, fmt.Errorf("serve: ws n %d out of range", n)
		}
		return gen.WattsStrogatz(n, k, float64(beta)/100, int64(opt(3, 1))), nil
	case "ba":
		n, err := atoi(0, "n")
		if err != nil {
			return nil, err
		}
		m, err := atoi(1, "m")
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1<<22 {
			return nil, fmt.Errorf("serve: ba n %d out of range", n)
		}
		return gen.BarabasiAlbert(n, m, int64(opt(2, 1))), nil
	case "complete", "star", "path", "cycle":
		n, err := atoi(0, "n")
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1<<22 {
			return nil, fmt.Errorf("serve: %s n %d out of range", kind, n)
		}
		switch kind {
		case "complete":
			if n > 4096 {
				return nil, fmt.Errorf("serve: complete n %d too large (max 4096)", n)
			}
			return gen.Complete(n), nil
		case "star":
			return gen.Star(n), nil
		case "path":
			return gen.Path(n), nil
		default:
			return gen.Cycle(n), nil
		}
	default:
		return nil, fmt.Errorf("serve: unknown graph spec kind %q", kind)
	}
}

// ParseSchedPolicy converts a scheduling-policy name (static, roundrobin /
// round-robin, stealing) to a simt.Policy.
func ParseSchedPolicy(s string) (simt.Policy, error) {
	switch s {
	case "static", "":
		return simt.Static, nil
	case "roundrobin", "round-robin":
		return simt.RoundRobin, nil
	case "stealing":
		return simt.Stealing, nil
	}
	return simt.Static, fmt.Errorf("serve: unknown scheduling policy %q", s)
}
