package serve

import (
	"sync"
	"time"
)

// Per-device circuit breaker. Each pooled device carries one; together
// with the health score it is the quarantine mechanism:
//
//	closed ──(consecutive failures ≥ threshold, or health < OpenBelow)──▶ open
//	open ──(cooldown elapsed, next lease request)──▶ half-open
//	half-open ──(ProbeSuccesses consecutive clean probes)──▶ closed
//	half-open ──(any probe failure)──▶ open (cooldown doubled, capped)
//
// While open the device is quarantined: the lease path skips it entirely
// (except for the all-devices-open fail-open rule, see pool.go). In
// half-open the device is on probation: real jobs trickle onto it one at
// a time as probe leases, and only a run of clean probes re-admits it.
// Re-admission boosts the health score to probation level so the stale
// quarantine-era EWMA cannot immediately re-trip the breaker.
//
// The clock is injectable (now func) so the state machine is table-testable
// without sleeping.

// BreakerState is the circuit state of one pooled device.
type BreakerState int

const (
	// BreakerClosed: healthy, serving normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: quarantined, receiving no work until cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: on probation, served only by sequential probe jobs.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breakerConfig holds the resolved thresholds (see SelfHealConfig for the
// user-facing knobs and defaults).
type breakerConfig struct {
	failureThreshold int           // consecutive failures tripping closed → open
	openBelow        float64       // health score below which closed trips
	cooldown         time.Duration // open → half-open delay (base)
	maxCooldown      time.Duration // backoff cap after repeated probe failures
	probeSuccesses   int           // consecutive clean probes to close
}

// breakerEvent reports a state-machine transition caused by one recorded
// outcome, so the pool can count quarantines and re-admissions.
type breakerEvent int

const (
	breakerNoEvent    breakerEvent = iota
	breakerTripped                 // entered open (from closed or half-open)
	breakerReadmitted              // half-open probation completed, now closed
)

type breaker struct {
	cfg breakerConfig
	now func() time.Time

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
	cooldown    time.Duration // current (possibly backed-off) cooldown
	probeOK     int
	probeBusy   bool // a probe lease is outstanding
}

func newBreaker(cfg breakerConfig, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	if cfg.failureThreshold < 1 {
		cfg.failureThreshold = 5
	}
	if cfg.openBelow <= 0 {
		cfg.openBelow = 0.25
	}
	if cfg.cooldown <= 0 {
		cfg.cooldown = 2 * time.Second
	}
	if cfg.maxCooldown < cfg.cooldown {
		cfg.maxCooldown = 8 * cfg.cooldown
	}
	if cfg.probeSuccesses < 1 {
		cfg.probeSuccesses = 3
	}
	return &breaker{cfg: cfg, now: now, cooldown: cfg.cooldown}
}

// State returns the current state, applying the time-based open → half-open
// transition lazily.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	return b.state
}

// tickLocked advances open → half-open once the cooldown has elapsed.
func (b *breaker) tickLocked() {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = BreakerHalfOpen
		b.probeOK = 0
		b.probeBusy = false
	}
}

// allowNormal reports whether the device may take a regular lease.
func (b *breaker) allowNormal() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	return b.state == BreakerClosed
}

// tryProbe reserves the (single) probe slot of a half-open device,
// advancing open → half-open first if the cooldown has elapsed. The
// reservation is released by recordProbe or releaseProbe.
func (b *breaker) tryProbe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	if b.state != BreakerHalfOpen || b.probeBusy {
		return false
	}
	b.probeBusy = true
	return true
}

// releaseProbe frees the probe slot without judging the device (the probe
// job was canceled, not failed).
func (b *breaker) releaseProbe() {
	b.mu.Lock()
	b.probeBusy = false
	b.mu.Unlock()
}

// record folds one normal (non-probe) job outcome into the breaker.
// score is the device's post-observation health score.
func (b *breaker) record(good bool, score float64) breakerEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	if b.state != BreakerClosed {
		// A fail-open lease finished on a quarantined device; it carries no
		// probation weight.
		return breakerNoEvent
	}
	if good {
		b.consecFails = 0
	} else {
		b.consecFails++
	}
	if b.consecFails >= b.cfg.failureThreshold || score < b.cfg.openBelow {
		b.openLocked()
		return breakerTripped
	}
	return breakerNoEvent
}

// recordProbe folds one probe outcome into a half-open breaker. A clean
// run counts toward probation; any failure re-opens with a doubled
// (capped) cooldown.
func (b *breaker) recordProbe(good bool) breakerEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probeBusy = false
	if b.state != BreakerHalfOpen {
		return breakerNoEvent
	}
	if !good {
		b.cooldown *= 2
		if b.cooldown > b.cfg.maxCooldown {
			b.cooldown = b.cfg.maxCooldown
		}
		b.openLocked()
		return breakerTripped
	}
	b.probeOK++
	if b.probeOK >= b.cfg.probeSuccesses {
		b.state = BreakerClosed
		b.consecFails = 0
		b.cooldown = b.cfg.cooldown
		return breakerReadmitted
	}
	return breakerNoEvent
}

// openLocked enters the open state. Called with b.mu held.
func (b *breaker) openLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.consecFails = 0
	b.probeOK = 0
	b.probeBusy = false
}
