package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gcolor/internal/color"
	"gcolor/internal/gpucolor"
)

// fakeClock is an injectable breaker clock: tests advance it explicitly
// instead of sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(clk *fakeClock) *breaker {
	return newBreaker(breakerConfig{
		failureThreshold: 3,
		openBelow:        0.25,
		cooldown:         time.Second,
		maxCooldown:      4 * time.Second,
		probeSuccesses:   2,
	}, clk.now)
}

func TestBreakerStateMachine(t *testing.T) {
	t.Run("successes keep it closed", func(t *testing.T) {
		b := testBreaker(&fakeClock{})
		for i := 0; i < 10; i++ {
			if ev := b.record(true, 0.9); ev != breakerNoEvent {
				t.Fatalf("success %d produced event %d", i, ev)
			}
		}
		if b.State() != BreakerClosed {
			t.Fatalf("state = %v, want closed", b.State())
		}
	})

	t.Run("consecutive failures trip at threshold", func(t *testing.T) {
		b := testBreaker(&fakeClock{})
		for i := 0; i < 2; i++ {
			if ev := b.record(false, 0.9); ev != breakerNoEvent {
				t.Fatalf("failure %d tripped early", i)
			}
		}
		// A success resets the run.
		b.record(true, 0.9)
		b.record(false, 0.9)
		b.record(false, 0.9)
		if b.State() != BreakerClosed {
			t.Fatal("tripped before threshold after reset")
		}
		if ev := b.record(false, 0.9); ev != breakerTripped {
			t.Fatalf("third consecutive failure: event %d, want tripped", ev)
		}
		if b.State() != BreakerOpen {
			t.Fatalf("state = %v, want open", b.State())
		}
	})

	t.Run("low health score trips regardless of failures", func(t *testing.T) {
		b := testBreaker(&fakeClock{})
		if ev := b.record(true, 0.1); ev != breakerTripped {
			t.Fatalf("score 0.1 < openBelow: event %d, want tripped", ev)
		}
	})

	t.Run("open until cooldown, then a single probe slot", func(t *testing.T) {
		clk := &fakeClock{}
		b := testBreaker(clk)
		for i := 0; i < 3; i++ {
			b.record(false, 0.9)
		}
		if b.allowNormal() {
			t.Fatal("open breaker allowed a normal lease")
		}
		if b.tryProbe() {
			t.Fatal("probe admitted before cooldown")
		}
		clk.advance(999 * time.Millisecond)
		if b.tryProbe() {
			t.Fatal("probe admitted 1ms early")
		}
		clk.advance(time.Millisecond)
		if !b.tryProbe() {
			t.Fatal("probe rejected after cooldown")
		}
		if b.State() != BreakerHalfOpen {
			t.Fatalf("state = %v, want half-open", b.State())
		}
		if b.tryProbe() {
			t.Fatal("second concurrent probe admitted")
		}
		// A canceled probe frees the slot without judging the device.
		b.releaseProbe()
		if !b.tryProbe() {
			t.Fatal("probe slot not freed by releaseProbe")
		}
	})

	t.Run("failed probe reopens with doubled cooldown, capped", func(t *testing.T) {
		clk := &fakeClock{}
		b := testBreaker(clk)
		for i := 0; i < 3; i++ {
			b.record(false, 0.9)
		}
		fail := func(wantCooldown time.Duration) {
			t.Helper()
			clk.advance(wantCooldown)
			if !b.tryProbe() {
				t.Fatalf("probe rejected after %v cooldown", wantCooldown)
			}
			if ev := b.recordProbe(false); ev != breakerTripped {
				t.Fatalf("failed probe: event %d, want tripped", ev)
			}
			if b.State() != BreakerOpen {
				t.Fatalf("state after failed probe = %v, want open", b.State())
			}
		}
		fail(time.Second)     // base cooldown; next becomes 2s
		fail(2 * time.Second) // next becomes 4s
		fail(4 * time.Second) // capped at maxCooldown = 4s
		// Still capped: 4s, not 8s.
		clk.advance(4 * time.Second)
		if !b.tryProbe() {
			t.Fatal("cooldown exceeded maxCooldown cap")
		}
	})

	t.Run("clean probes re-admit and reset the cooldown", func(t *testing.T) {
		clk := &fakeClock{}
		b := testBreaker(clk)
		for i := 0; i < 3; i++ {
			b.record(false, 0.9)
		}
		clk.advance(time.Second)
		if !b.tryProbe() {
			t.Fatal("probe rejected")
		}
		if ev := b.recordProbe(true); ev != breakerNoEvent {
			t.Fatalf("first clean probe: event %d, want none (1/2)", ev)
		}
		if !b.tryProbe() {
			t.Fatal("second probe rejected")
		}
		if ev := b.recordProbe(true); ev != breakerReadmitted {
			t.Fatalf("second clean probe: event %d, want readmitted", ev)
		}
		if b.State() != BreakerClosed {
			t.Fatalf("state = %v, want closed after probation", b.State())
		}
		if !b.allowNormal() {
			t.Fatal("re-admitted breaker refused a normal lease")
		}
		// Cooldown was reset to base by the re-admission.
		for i := 0; i < 3; i++ {
			b.record(false, 0.9)
		}
		clk.advance(time.Second)
		if !b.tryProbe() {
			t.Fatal("cooldown was not reset to base after re-admission")
		}
	})

	t.Run("records while non-closed are no-ops", func(t *testing.T) {
		b := testBreaker(&fakeClock{})
		for i := 0; i < 3; i++ {
			b.record(false, 0.9)
		}
		// A fail-open lease finishing on a quarantined device must not
		// re-trip or re-admit anything.
		if ev := b.record(false, 0.0); ev != breakerNoEvent {
			t.Fatalf("record while open: event %d, want none", ev)
		}
		if b.State() != BreakerOpen {
			t.Fatalf("state = %v, want open", b.State())
		}
	})
}

func TestOutcomeRewards(t *testing.T) {
	cases := []struct {
		kind   gpucolor.OutcomeKind
		faults int64
		want   float64
		counts bool
	}{
		{gpucolor.OutcomeSuccess, 0, rewardSuccess, true},
		{gpucolor.OutcomeSuccess, 3, rewardFaultMasked, true}, // fault-absorbed
		{gpucolor.OutcomeRepaired, 0, rewardRepaired, true},
		{gpucolor.OutcomeRetried, 0, rewardRetried, true},
		{gpucolor.OutcomeCPUFallback, 0, rewardCPUFallback, true},
		{gpucolor.OutcomeWatchdog, 0, rewardFailure, true},
		{gpucolor.OutcomeBudget, 0, rewardFailure, true},
		{gpucolor.OutcomeFailed, 0, rewardFailure, true},
		{gpucolor.OutcomeCanceled, 0, 0, false}, // hedge losers are neutral
	}
	for _, c := range cases {
		got, counts := outcomeReward(c.kind, c.faults)
		if got != c.want || counts != c.counts {
			t.Errorf("outcomeReward(%v, %d) = (%v, %v), want (%v, %v)",
				c.kind, c.faults, got, counts, c.want, c.counts)
		}
	}
}

func TestHealthScoreEWMA(t *testing.T) {
	h := newFleetHealth(2, 0.5, 4)
	if got := h.score(0); got != 1 {
		t.Fatalf("initial score = %v, want 1", got)
	}
	// Failures decay toward 0, successes recover toward 1.
	h.observe(0, rewardFailure, 0)
	if got := h.score(0); got != 0.5 {
		t.Fatalf("after one failure: %v, want 0.5", got)
	}
	h.observe(0, rewardFailure, 0)
	if got := h.score(0); got != 0.25 {
		t.Fatalf("after two failures: %v, want 0.25", got)
	}
	h.observe(0, rewardSuccess, 0)
	if got := h.score(0); got != 0.625 {
		t.Fatalf("recovery: %v, want 0.625", got)
	}
	if got := h.score(1); got != 1 {
		t.Fatalf("device 1 score moved to %v without observations", got)
	}
	// boost only raises.
	h.boost(0, 0.9)
	if got := h.score(0); got != 0.9 {
		t.Fatalf("boost: %v, want 0.9", got)
	}
	h.boost(0, 0.1)
	if got := h.score(0); got != 0.9 {
		t.Fatalf("boost lowered a score: %v", got)
	}
	// Latency penalty: a success far beyond slack×median keeps only part
	// of its reward.
	for i := 0; i < 16; i++ {
		h.observe(1, rewardSuccess, 10*time.Millisecond)
	}
	before := h.score(1)
	h.observe(1, rewardSuccess, 400*time.Millisecond) // 40× median, slack 4
	if got := h.score(1); got >= before {
		t.Fatalf("glacial success did not penalise: %v -> %v", before, got)
	}
}

func TestHedgeTrackerWarmup(t *testing.T) {
	h := newHedgeTracker(3, time.Millisecond, 1)
	if _, ok := h.threshold(); ok {
		t.Fatal("threshold active before any samples")
	}
	h.observe(10 * time.Microsecond)
	h.observe(20 * time.Microsecond)
	if _, ok := h.threshold(); ok {
		t.Fatal("threshold active below minSamples")
	}
	h.observe(30 * time.Microsecond)
	thr, ok := h.threshold()
	if !ok {
		t.Fatal("threshold inactive at minSamples")
	}
	if thr < time.Millisecond {
		t.Fatalf("threshold %v below floor", thr)
	}
}

// TestHedgedDispatch: a job that runs past the hedge threshold is
// re-dispatched to the second device; exactly one response comes back, the
// loser is canceled, and both leases are released.
func TestHedgedDispatch(t *testing.T) {
	s := NewServer(Config{
		// Deliberately lopsided device speeds (simulation host goroutines)
		// so whichever attempt loses still has most of its run left when
		// the winner finishes — the cancellation is always exercised.
		DeviceConfigs: []DeviceConfig{{Workers: 4}, {Workers: 1}},
		SelfHeal: SelfHealConfig{
			HedgeMinSamples: 1,
			HedgeFloor:      time.Millisecond,
		},
	})
	defer s.Stop()

	// Warm the hedge tracker past its min-samples gate.
	if _, err := s.Submit(context.Background(), &Request{Graph: smallGraph()}); err != nil {
		t.Fatalf("prime Submit: %v", err)
	}
	if got := s.hedge.samples(); got < 1 {
		t.Fatalf("hedge tracker has %d samples after a success", got)
	}

	g := blockerGraph()
	res, err := s.Submit(context.Background(), &Request{Graph: g, NoCache: true})
	if err != nil {
		t.Fatalf("hedged Submit: %v", err)
	}
	if err := color.Verify(g, res.Colors); err != nil {
		t.Fatalf("winning coloring invalid: %v", err)
	}
	if !res.Hedged {
		t.Fatal("response not flagged Hedged")
	}

	st := s.Stats()
	if st.Hedges != 1 {
		t.Fatalf("hedges_total = %d, want 1", st.Hedges)
	}
	if st.HedgeWins+st.HedgeLosses != 1 {
		t.Fatalf("hedge wins %d + losses %d != 1: not exactly one winner", st.HedgeWins, st.HedgeLosses)
	}
	// Exactly one response was counted for the hedged request (prime + hedged).
	if st.Completed != 2 {
		t.Fatalf("completed_total = %d, want 2 — a hedge double-counted", st.Completed)
	}

	// The losing attempt observes its cancellation, and both devices come
	// back to the pool.
	waitFor(t, "loser cancellation", func() bool {
		return s.Metrics().Counter("attempts_canceled_total").Value() == 1
	})
	waitFor(t, "all leases released", func() bool {
		return s.Metrics().Gauge("devices_busy").Value() == 0
	})
	l1, ok1 := s.Pool().TryAcquire()
	l2, ok2 := s.Pool().TryAcquire()
	if !ok1 || !ok2 {
		t.Fatal("a hedge attempt leaked its lease")
	}
	l1.Release()
	l2.Release()
}

// TestDrainCompletesQueuedWork: Drain(0) lets every admitted job finish —
// nothing in flight or queued is dropped.
func TestDrainCompletesQueuedWork(t *testing.T) {
	// Batching off: this test counts device leases, and the five queued
	// small jobs would legitimately fuse into one launch otherwise.
	s := NewServer(Config{Devices: 1, Workers: 1, Batch: BatchConfig{Disabled: true}})

	errs := make(chan error, 6)
	// One long job occupies the only device...
	go func() {
		_, err := s.Submit(context.Background(), &Request{Graph: blockerGraph(), NoCache: true})
		errs <- err
	}()
	waitFor(t, "blocker to occupy the device", func() bool {
		return s.Metrics().Gauge("devices_busy").Value() == 1
	})
	// ...and five more queue up behind it.
	for i := 0; i < 5; i++ {
		seed := uint32(i + 1)
		go func() {
			_, err := s.Submit(context.Background(), &Request{Graph: smallGraph(), Seed: seed, NoCache: true})
			errs <- err
		}()
	}
	waitFor(t, "five jobs to queue", func() bool { return s.Stats().QueueDepth == 5 })

	sum, err := s.Drain(0)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i := 0; i < 6; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("job dropped during drain: %v", err)
		}
	}
	if sum.TimedOut || sum.HandedOff != 0 {
		t.Fatalf("drain summary %+v, want no timeout and no hand-offs", sum)
	}
	if got := s.Pool().Jobs(0); got != 6 {
		t.Fatalf("device ran %d jobs, want all 6", got)
	}
	if _, err := s.Submit(context.Background(), &Request{Graph: smallGraph(), NoCache: true}); !errors.Is(err, ErrClosed) || !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after drain: %v, want ErrDraining (wrapping ErrClosed)", err)
	}
}

// TestDrainTimeoutHandsOff: a drain that cannot finish by its deadline
// hands queued jobs back to their callers (never silently drops them) and
// returns a typed DrainTimeoutError.
func TestDrainTimeoutHandsOff(t *testing.T) {
	s := NewServer(Config{Devices: 1, Workers: 1})

	blockerErr := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), &Request{Graph: slowBlockerGraph(), NoCache: true})
		blockerErr <- err
	}()
	waitFor(t, "blocker to occupy the device", func() bool {
		return s.Metrics().Gauge("devices_busy").Value() == 1
	})
	queued := make(chan error, 3)
	for i := 0; i < 3; i++ {
		seed := uint32(i + 1)
		go func() {
			_, err := s.Submit(context.Background(), &Request{Graph: smallGraph(), Seed: seed, NoCache: true})
			queued <- err
		}()
	}
	waitFor(t, "three jobs to queue", func() bool { return s.Stats().QueueDepth == 3 })

	sum, err := s.Drain(50 * time.Millisecond)
	var dte *DrainTimeoutError
	if !errors.As(err, &dte) {
		t.Fatalf("Drain error %v, want *DrainTimeoutError", err)
	}
	if !sum.TimedOut || sum.HandedOff != 3 {
		t.Fatalf("drain summary %+v, want timed out with 3 hand-offs", sum)
	}
	for i := 0; i < 3; i++ {
		if err := <-queued; !errors.Is(err, ErrDraining) {
			t.Fatalf("handed-off job error %v, want ErrDraining", err)
		}
	}
	// The in-flight blocker was canceled at the deadline, not stranded.
	if err := <-blockerErr; err == nil {
		t.Fatal("blocker completed despite drain-deadline cancellation")
	}
	if got := s.Metrics().Counter("drain_handoff_total").Value(); got != 3 {
		t.Fatalf("drain_handoff_total = %d, want 3", got)
	}
}

// TestDeadlineInQueueTyped: a job expiring while queued completes its
// flight with the ErrDeadlineInQueue sentinel (still matching the job's
// context error) and is counted by the shed_expired metric. The canceled
// submitter itself returns early on its own context, so the typed error is
// observed through a coalesced waiter whose context is still live.
func TestDeadlineInQueueTyped(t *testing.T) {
	s := NewServer(Config{Devices: 1, Workers: 1})
	defer s.Stop()
	go s.Submit(context.Background(), &Request{Graph: blockerGraph(), NoCache: true})
	waitFor(t, "blocker to occupy the device", func() bool {
		return s.Metrics().Gauge("devices_busy").Value() == 1
	})
	ctx, cancel := context.WithCancel(context.Background())
	ownerErr := make(chan error, 1)
	go func() {
		// Owns the job: its context is the job context.
		_, err := s.Submit(ctx, &Request{Graph: smallGraph()})
		ownerErr <- err
	}()
	waitFor(t, "request to queue", func() bool { return s.Stats().QueueDepth >= 1 })
	coalescedErr := make(chan error, 1)
	go func() {
		// Coalesces onto the queued job's flight with a live context.
		_, err := s.Submit(context.Background(), &Request{Graph: smallGraph()})
		coalescedErr <- err
	}()
	waitFor(t, "duplicate to coalesce", func() bool {
		return s.Metrics().Counter("coalesced_total").Value() == 1
	})
	cancel()
	if err := <-ownerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled owner returned %v, want context.Canceled", err)
	}
	err := <-coalescedErr
	if !errors.Is(err, ErrDeadlineInQueue) {
		t.Fatalf("coalesced waiter got %v, want ErrDeadlineInQueue", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v no longer matches the job's context error", err)
	}
	waitFor(t, "shed_expired to be counted", func() bool {
		st := s.Stats()
		return st.ShedExpired == 1 && st.DeadlineExpired == 1
	})
}

// TestDrainzEndpoint: GET reports status, POST requests a drain that the
// daemon observes via DrainRequested, and /metricsz carries the
// self-healing lines.
func TestDrainzEndpoint(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/drainz")
	if code != http.StatusOK || !strings.Contains(body, `"draining":false`) {
		t.Fatalf("GET /drainz = %d %q, want 200 with draining:false", code, body)
	}
	_, body = get("/metricsz")
	for _, want := range []string{"device_health_0", "device_breaker_0", "quarantines_total", "shed_expired", "hedges_total", "draining 0"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metricsz missing %q", want)
		}
	}

	select {
	case <-s.DrainRequested():
		t.Fatal("drain requested before POST /drainz")
	default:
	}
	resp, err := http.Post(ts.URL+"/drainz", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /drainz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /drainz = %d, want 202", resp.StatusCode)
	}
	select {
	case <-s.DrainRequested():
	case <-time.After(time.Second):
		t.Fatal("POST /drainz did not signal DrainRequested")
	}
}

// TestQuarantineAndReadmission drives the full loop in-process: sicken a
// device, watch the breaker open, clear the fault, watch probes re-admit
// it.
func TestQuarantineAndReadmission(t *testing.T) {
	s := NewServer(Config{
		DeviceConfigs: []DeviceConfig{
			{FaultRate: 0.05, FaultSeed: 7, FaultDisarmed: true},
			{},
		},
		SelfHeal: SelfHealConfig{
			FailureThreshold: 2,
			Cooldown:         50 * time.Millisecond,
			MaxCooldown:      200 * time.Millisecond,
			ProbeSuccesses:   2,
			NoHedge:          true,
		},
	})
	defer s.Stop()

	submit := func(seed uint32) error {
		_, err := s.Submit(context.Background(), &Request{
			Graph: smallGraph(), Seed: seed, NoCache: true,
			NoCPUFallback: true, MaxRetries: -1,
		})
		return err
	}

	s.Pool().FaultInjector(0).Arm()
	var seed uint32
	waitFor(t, "device 0 to be quarantined", func() bool {
		seed++
		_ = submit(seed)
		return s.Pool().BreakerState(0) == BreakerOpen
	})
	if s.Stats().Quarantines < 1 {
		t.Fatal("quarantine not counted")
	}

	s.Pool().FaultInjector(0).Disarm()
	waitFor(t, "device 0 to be re-admitted", func() bool {
		seed++
		_ = submit(seed)
		return s.Pool().BreakerState(0) == BreakerClosed
	})
	st := s.Stats()
	if st.Readmitted < 1 || st.Probes < 1 {
		t.Fatalf("readmitted=%d probes=%d, want both >= 1", st.Readmitted, st.Probes)
	}
	if got := s.Pool().HealthScore(0); got < 0.5 {
		t.Fatalf("re-admitted device health %v, want probation boost >= 0.5", got)
	}
}
