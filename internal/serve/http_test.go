package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gcolor/internal/color"
)

func postColor(t *testing.T, ts *httptest.Server, body ColorRequest) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+"/color", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST /color: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func TestHTTPColorGenSpec(t *testing.T) {
	s := NewServer(Config{Devices: 2})
	defer s.Stop()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	resp, body := postColor(t, ts, ColorRequest{Gen: "grid:6:6", Alg: "hybrid", IncludeColors: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr ColorResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if cr.Vertices != 36 || cr.NumColors < 2 {
		t.Fatalf("unexpected response: %+v", cr)
	}
	if len(cr.Colors) != 36 {
		t.Fatalf("include_colors returned %d colors, want 36", len(cr.Colors))
	}
	g, err := ParseGraphSpec("grid:6:6")
	if err != nil {
		t.Fatal(err)
	}
	if err := color.Verify(g, cr.Colors); err != nil {
		t.Fatalf("returned coloring invalid: %v", err)
	}

	// Same request again: served from cache, flagged as such.
	resp2, body2 := postColor(t, ts, ColorRequest{Gen: "grid:6:6", Alg: "hybrid"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	var cr2 ColorResponse
	if err := json.Unmarshal(body2, &cr2); err != nil {
		t.Fatalf("unmarshal 2: %v", err)
	}
	if !cr2.Cached || cr2.Device != -1 {
		t.Fatalf("repeat request not cached: %+v", cr2)
	}
	if len(cr2.Colors) != 0 {
		t.Fatal("colors echoed without include_colors")
	}
	if cr2.Fingerprint != cr.Fingerprint {
		t.Fatalf("fingerprint changed between identical requests: %s vs %s", cr.Fingerprint, cr2.Fingerprint)
	}
}

func TestHTTPColorInlineGraph(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	resp, body := postColor(t, ts, ColorRequest{Graph: "0 1\n1 2\n2 0\n", IncludeColors: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr ColorResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if cr.Vertices != 3 || cr.Edges != 3 || cr.NumColors != 3 {
		t.Fatalf("triangle response: %+v", cr)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	cases := []ColorRequest{
		{},                                     // no graph source
		{Gen: "grid:2:2", Graph: "0 1\n"},      // both sources
		{Gen: "bogus:1:2"},                     // unknown spec
		{Gen: "grid:2:2", Alg: "nope"},         // unknown algorithm
		{Gen: "grid:2:2", Policy: "nope"},      // unknown policy
		{Gen: "grid:2:2", Priority: "extreme"}, // unknown priority
	}
	for i, c := range cases {
		resp, body := postColor(t, ts, c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400 (%s)", i, resp.StatusCode, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Kind != "bad_request" {
			t.Errorf("case %d: error body %s", i, body)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/color", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPHealthzMetricsz(t *testing.T) {
	s := NewServer(Config{Devices: 3})
	defer s.Stop()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status  string `json:"status"`
		Devices int    `json:"devices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || hz.Devices != 3 {
		t.Fatalf("healthz: %+v", hz)
	}

	// Generate some traffic, then check the counters show up.
	postColor(t, ts, ColorRequest{Gen: "grid:5:5"})
	postColor(t, ts, ColorRequest{Gen: "grid:5:5"})

	resp, err = http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"requests_total 2",
		"cache_hits 1",
		"completed_total 1",
		"cache_hit_rate 0.5",
		"device_utilization ",
		"wait_us.count ",
		"exec_us.p99 ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metricsz missing %q:\n%s", want, text)
		}
	}
}

func TestHTTPRequestTimeout(t *testing.T) {
	s := NewServer(Config{Devices: 1, Workers: 1})
	defer s.Stop()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	// A deadline far below the request's own execution time (rmat:10 takes
	// on the order of 100ms simulated-device wall time, the deadline is
	// 1ms) must come back 504, whether it expires in the queue or at an
	// iteration boundary mid-run.
	resp, body := postColor(t, ts, ColorRequest{Gen: "rmat:10:16:1", NoCache: true, TimeoutMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != "deadline" {
		t.Fatalf("error body: %s", body)
	}
}

// TestHTTPBodyLimit pins the POST /color body cap at its exact boundary:
// a body of precisely the configured limit decodes and serves, one byte
// past it is refused with 413 and the typed "too_large" error body before
// any graph parsing runs.
func TestHTTPBodyLimit(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	const limit = 512
	ts := httptest.NewServer(HandlerWith(s, HandlerConfig{MaxBodyBytes: limit}))
	defer ts.Close()

	// Pad a valid request up to an exact byte size with an ignored field.
	padded := func(size int) []byte {
		base := `{"gen":"grid:4:4","pad":""}`
		pad := size - len(base)
		if pad < 0 {
			t.Fatalf("size %d below base request %d", size, len(base))
		}
		return []byte(`{"gen":"grid:4:4","pad":"` + strings.Repeat("x", pad) + `"}`)
	}

	post := func(body []byte) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/color", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatalf("read body: %v", err)
		}
		return resp, buf.Bytes()
	}

	atLimit := padded(limit)
	if len(atLimit) != limit {
		t.Fatalf("padded body is %d bytes, want %d", len(atLimit), limit)
	}
	resp, body := post(atLimit)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("at-limit body: status %d (%s)", resp.StatusCode, body)
	}

	resp, body = post(padded(limit + 1))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit body: status %d, want 413 (%s)", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != "too_large" {
		t.Fatalf("over-limit error body: %s", body)
	}
}

// TestHTTPShardedRequest drives the shards knob through the wire format
// and checks the shard evidence comes back.
func TestHTTPShardedRequest(t *testing.T) {
	s := NewServer(Config{Devices: 2, Device: DeviceConfig{Workers: 1}})
	defer s.Stop()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	resp, body := postColor(t, ts, ColorRequest{Gen: "rmat:10:8:1", Shards: 2, IncludeColors: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	var cr ColorResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if cr.Shards != 2 {
		t.Fatalf("shards = %d, want 2", cr.Shards)
	}
	if cr.Device != -1 {
		t.Fatalf("device = %d, want -1", cr.Device)
	}
	g, err := ParseGraphSpec("rmat:10:8:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := color.Verify(g, cr.Colors); err != nil {
		t.Fatalf("returned coloring invalid: %v", err)
	}
}
