package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"gcolor/internal/color"
	"gcolor/internal/gen"
	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
	"gcolor/internal/journal"
)

// submitResident uploads g as a resident version and returns its
// fingerprint.
func submitResident(t *testing.T, s *Server, g *graph.Graph) uint64 {
	t.Helper()
	res, err := s.Submit(context.Background(), &Request{Graph: g, Resident: true})
	if err != nil {
		t.Fatalf("resident upload: %v", err)
	}
	return res.Fingerprint
}

func TestDeltaIncrementalColoring(t *testing.T) {
	s := NewServer(Config{Devices: 2})
	defer s.Stop()
	g := gen.Grid2D(10, 10)
	baseFp := submitResident(t, s, g)

	d := &graph.Delta{AddVertices: 1, AddEdges: [][2]int32{{0, 99}, {0, 100}, {5, 7}}}
	res, err := s.Submit(context.Background(), &Request{Delta: d, BaseFingerprint: baseFp})
	if err != nil {
		t.Fatalf("delta submit: %v", err)
	}
	if !res.Delta || res.DeltaFallback {
		t.Fatalf("delta=%v fallback=%v, want incremental hit", res.Delta, res.DeltaFallback)
	}
	ng, wantFp, frontier, err := graph.ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != wantFp {
		t.Fatalf("successor fingerprint %016x, want %016x", res.Fingerprint, wantFp)
	}
	if res.FrontierSize != len(frontier) {
		t.Fatalf("frontier size %d, want %d", res.FrontierSize, len(frontier))
	}
	if res.Vertices != ng.NumVertices() || res.Edges != ng.NumEdges() {
		t.Fatalf("successor reported %d/%d, want %d/%d", res.Vertices, res.Edges, ng.NumVertices(), ng.NumEdges())
	}
	if err := color.Verify(ng, res.Colors); err != nil {
		t.Fatalf("delta coloring invalid: %v", err)
	}

	// Chain: a further delta against the successor must work too.
	d2 := &graph.Delta{RemoveEdges: [][2]int32{{0, 1}}}
	res2, err := s.Submit(context.Background(), &Request{Delta: d2, BaseFingerprint: res.Fingerprint})
	if err != nil {
		t.Fatalf("chained delta: %v", err)
	}
	ng2, wantFp2, _, _ := graph.ApplyDelta(ng, d2)
	if res2.Fingerprint != wantFp2 {
		t.Fatalf("chained fingerprint %016x, want %016x", res2.Fingerprint, wantFp2)
	}
	if err := color.Verify(ng2, res2.Colors); err != nil {
		t.Fatalf("chained coloring invalid: %v", err)
	}

	st := s.Stats()
	if st.DeltaRequests != 2 || st.DeltaHits != 2 || st.DeltaFallbacks != 0 {
		t.Fatalf("delta stats requests=%d hits=%d fallbacks=%d, want 2/2/0",
			st.DeltaRequests, st.DeltaHits, st.DeltaFallbacks)
	}
	if st.VersionsResident != 3 {
		t.Fatalf("versions resident %d, want 3 (base + two successors)", st.VersionsResident)
	}
}

func TestDeltaContentIdentitySharesCache(t *testing.T) {
	// A delta-produced version and a from-scratch upload of the same graph
	// must land on the same fingerprint, so the second is a cache hit.
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	g := gen.Grid2D(6, 6)
	baseFp := submitResident(t, s, g)
	d := &graph.Delta{AddEdges: [][2]int32{{0, 35}}}
	res, err := s.Submit(context.Background(), &Request{Delta: d, BaseFingerprint: baseFp})
	if err != nil {
		t.Fatal(err)
	}
	ng, _, _, _ := graph.ApplyDelta(g, d)
	full, err := s.Submit(context.Background(), &Request{Graph: ng})
	if err != nil {
		t.Fatal(err)
	}
	if full.Fingerprint != res.Fingerprint {
		t.Fatalf("fingerprints diverge: %016x vs %016x", full.Fingerprint, res.Fingerprint)
	}
	if !full.Cached {
		t.Fatal("full upload of a delta-produced graph missed the cache")
	}
}

func TestDeltaUnknownBase(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	_, err := s.Submit(context.Background(), &Request{
		Delta:           &graph.Delta{AddVertices: 1},
		BaseFingerprint: 0xabad1dea,
	})
	var ube *UnknownBaseError
	if !errors.As(err, &ube) {
		t.Fatalf("err = %v, want *UnknownBaseError", err)
	}
	if ube.Fingerprint != 0xabad1dea {
		t.Fatalf("error fingerprint %x", ube.Fingerprint)
	}
	if st := s.Stats(); st.DeltaUnknownBase != 1 {
		t.Fatalf("delta_unknown_base_total = %d, want 1", st.DeltaUnknownBase)
	}
}

func TestDeltaBadDelta(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	fp := submitResident(t, s, gen.Grid2D(4, 4))
	_, err := s.Submit(context.Background(), &Request{
		Delta:           &graph.Delta{AddEdges: [][2]int32{{2, 2}}}, // self loop
		BaseFingerprint: fp,
	})
	var bde *BadDeltaError
	if !errors.As(err, &bde) {
		t.Fatalf("err = %v, want *BadDeltaError", err)
	}
}

func TestDeltaFallbackOverBudget(t *testing.T) {
	// FrontierFraction so small the budget is zero: every effective delta
	// falls back to a full recolor of the successor.
	s := NewServer(Config{Devices: 2, Delta: DeltaConfig{FrontierFraction: 1e-9}})
	defer s.Stop()
	g := gen.Grid2D(8, 8)
	baseFp := submitResident(t, s, g)
	d := &graph.Delta{AddEdges: [][2]int32{{0, 63}}}
	res, err := s.Submit(context.Background(), &Request{Delta: d, BaseFingerprint: baseFp})
	if err != nil {
		t.Fatalf("delta submit: %v", err)
	}
	if !res.Delta || !res.DeltaFallback {
		t.Fatalf("delta=%v fallback=%v, want fallback", res.Delta, res.DeltaFallback)
	}
	ng, wantFp, _, _ := graph.ApplyDelta(g, d)
	if res.Fingerprint != wantFp {
		t.Fatalf("fallback fingerprint %016x, want %016x", res.Fingerprint, wantFp)
	}
	if err := color.Verify(ng, res.Colors); err != nil {
		t.Fatalf("fallback coloring invalid: %v", err)
	}
	st := s.Stats()
	if st.DeltaFallbacks != 1 || st.DeltaHits != 0 {
		t.Fatalf("fallbacks=%d hits=%d, want 1/0", st.DeltaFallbacks, st.DeltaHits)
	}
	// The fallback still pins the successor: the next delta chains off it.
	if _, err := s.Submit(context.Background(), &Request{
		Delta:           &graph.Delta{RemoveEdges: [][2]int32{{0, 63}}},
		BaseFingerprint: res.Fingerprint,
	}); err != nil {
		t.Fatalf("delta against fallback-pinned version: %v", err)
	}
}

// TestCacheHitAliasingRegression is the regression test for the
// shallow-copy bug: a caller mutating the Colors slice of a cache (or
// idempotency) hit used to corrupt the cached entry, poisoning every
// later hit. Before the fix the third response observed the mutation.
func TestCacheHitAliasingRegression(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	g := smallGraph()
	req := func() *Request { return &Request{Graph: g, Algorithm: gpucolor.AlgBaseline} }
	first, err := s.Submit(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	want := slices.Clone(first.Colors)

	hit, err := s.Submit(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("second request was not a cache hit")
	}
	// The caller trashes its copy — as real callers legitimately may.
	for i := range hit.Colors {
		hit.Colors[i] = -99
	}

	again, err := s.Submit(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("third request was not a cache hit")
	}
	if !slices.Equal(again.Colors, want) {
		t.Fatal("cache entry was corrupted by mutating a previous hit's Colors")
	}
	if err := color.Verify(g, again.Colors); err != nil {
		t.Fatalf("post-mutation cache hit coloring invalid: %v", err)
	}
}

func TestIdemHitAliasingRegression(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	g := smallGraph()
	req := func() *Request {
		return &Request{Graph: g, IdemKey: "alias-key", NoCache: true}
	}
	first, err := s.Submit(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	want := slices.Clone(first.Colors)
	// Mutating even the *first* response must be safe: its Colors must not
	// alias the stored idempotent result.
	for i := range first.Colors {
		first.Colors[i] = -1
	}
	hit, err := s.Submit(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	if !hit.IdempotentReplay {
		t.Fatal("retry with same Idempotency-Key was not replayed")
	}
	for i := range hit.Colors {
		hit.Colors[i] = -7
	}
	again, err := s.Submit(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(again.Colors, want) {
		t.Fatal("idempotency entry was corrupted by mutating a previous hit's Colors")
	}
}

// TestDrainServesReplaysAndHits is the regression test for the drain
// ordering bug: the draining check used to run before the idempotency and
// cache lookups, so a rolling restart turned every replayable retry into
// a spurious 503. Hits never touch a device and must be served through
// drain; only work that needs the queue is refused.
func TestDrainServesReplaysAndHits(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	g := smallGraph()
	if _, err := s.Submit(context.Background(), &Request{Graph: g, IdemKey: "drain-idem"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Idempotent replay through drain.
	res, err := s.Submit(context.Background(), &Request{Graph: g, IdemKey: "drain-idem"})
	if err != nil {
		t.Fatalf("idem replay during drain refused: %v", err)
	}
	if !res.IdempotentReplay {
		t.Fatal("idem replay during drain was not a replay")
	}
	// Cache hit through drain (no idempotency key this time).
	res, err = s.Submit(context.Background(), &Request{Graph: g})
	if err != nil {
		t.Fatalf("cache hit during drain refused: %v", err)
	}
	if !res.Cached {
		t.Fatal("cache hit during drain was not served from cache")
	}
	// New work is still refused.
	if _, err := s.Submit(context.Background(), &Request{Graph: gen.Grid2D(3, 3)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("fresh work during drain: err = %v, want ErrDraining", err)
	}
	// NoCache requests must execute, so they are refused even on a cached
	// graph.
	if _, err := s.Submit(context.Background(), &Request{Graph: g, NoCache: true}); !errors.Is(err, ErrDraining) {
		t.Fatalf("NoCache during drain: err = %v, want ErrDraining", err)
	}
}

// TestDeltaPropertyRandomStreams drives random mutation streams through
// the incremental engine and checks the two delta invariants: every
// response is a conflict-free coloring of the true successor graph, and
// the incremental palette stays within 1.3x of a from-scratch recolor of
// the same graph.
func TestDeltaPropertyRandomStreams(t *testing.T) {
	s := NewServer(Config{Devices: 2, Delta: DeltaConfig{FrontierFraction: 1, Entries: 8}})
	defer s.Stop()
	scratch := NewServer(Config{Devices: 2})
	defer scratch.Stop()

	rng := rand.New(rand.NewSource(7))
	for stream := 0; stream < 3; stream++ {
		n := 120 + rng.Intn(80)
		edgeSet := map[[2]int32]bool{}
		var edges [][2]int32
		for u := 0; u < n; u++ {
			for k := 0; k < 4; k++ {
				v := rng.Intn(n)
				if v == u {
					continue
				}
				e := [2]int32{int32(min(u, v)), int32(max(u, v))}
				if !edgeSet[e] {
					edgeSet[e] = true
					edges = append(edges, e)
				}
			}
		}
		g := graph.FromEdges(n, edges)
		fp := submitResident(t, s, g)

		for step := 0; step < 12; step++ {
			d := &graph.Delta{}
			// Mutate ~1-2% of the edges per step.
			for i := 0; i < 1+len(edges)/64; i++ {
				if rng.Intn(2) == 0 && len(edges) > 0 {
					d.RemoveEdges = append(d.RemoveEdges, edges[rng.Intn(len(edges))])
				} else {
					u, v := rng.Intn(n), rng.Intn(n)
					if u == v {
						continue
					}
					d.AddEdges = append(d.AddEdges, [2]int32{int32(u), int32(v)})
				}
			}
			ng, wantFp, _, err := graph.ApplyDelta(g, d)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Submit(context.Background(), &Request{Delta: d, BaseFingerprint: fp})
			if err != nil {
				t.Fatalf("stream %d step %d: %v", stream, step, err)
			}
			if res.Fingerprint != wantFp {
				t.Fatalf("stream %d step %d: fingerprint diverged", stream, step)
			}
			if err := color.Verify(ng, res.Colors); err != nil {
				t.Fatalf("stream %d step %d: conflict in delta coloring: %v", stream, step, err)
			}
			// From-scratch comparison on an isolated server (no shared
			// cache): the incremental palette must stay within 1.3x.
			ref, err := scratch.Submit(context.Background(), &Request{Graph: ng, NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
			if limit := float64(ref.NumColors) * 1.3; float64(res.NumColors) > limit {
				t.Fatalf("stream %d step %d: delta used %d colors, from-scratch %d (>1.3x)",
					stream, step, res.NumColors, ref.NumColors)
			}
			g, fp = ng, res.Fingerprint
			edges = edges[:0]
			for v := int32(0); int(v) < g.NumVertices(); v++ {
				for _, u := range g.Neighbors(v) {
					if u > v {
						edges = append(edges, [2]int32{v, u})
					}
				}
			}
		}
	}
}

// TestJournalReplayRebuildsVersionChain colors through a journaled
// server — resident base plus two chained deltas — then restarts onto the
// same journal and checks the version chain was reconstructed: a fresh
// mutation against the final version must be served incrementally, and a
// crash-interrupted delta accept must replay to completion.
func TestJournalReplayRebuildsVersionChain(t *testing.T) {
	dir := t.TempDir()
	j1, rec1 := openTestJournal(t, dir)
	s1 := NewServer(Config{Devices: 2, Journal: j1, Recovery: rec1})
	ts1 := httptest.NewServer(Handler(s1))

	resp, body := postColorHeaders(t, ts1, ColorRequest{Gen: "grid:6:6", Resident: true}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resident upload: %d: %s", resp.StatusCode, body)
	}
	var base ColorResponse
	if err := json.Unmarshal(body, &base); err != nil {
		t.Fatal(err)
	}

	resp, body = postColorHeaders(t, ts1, ColorRequest{
		BaseFingerprint: base.Fingerprint,
		AddEdges:        [][2]int32{{0, 35}},
	}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta 1: %d: %s", resp.StatusCode, body)
	}
	var d1 ColorResponse
	if err := json.Unmarshal(body, &d1); err != nil {
		t.Fatal(err)
	}
	if !d1.Delta || d1.DeltaFallback {
		t.Fatalf("delta 1 not incremental: %+v", d1)
	}

	resp, body = postColorHeaders(t, ts1, ColorRequest{
		BaseFingerprint: d1.Fingerprint,
		AddVertices:     1,
		AddEdges:        [][2]int32{{36, 0}},
	}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta 2: %d: %s", resp.StatusCode, body)
	}
	var d2 ColorResponse
	if err := json.Unmarshal(body, &d2); err != nil {
		t.Fatal(err)
	}

	ts1.Close()
	s1.Stop()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Fabricate a crash-interrupted delta: an accept with no completion.
	// Replay must re-run it through the rebuilt version store.
	jx, _ := openTestJournal(t, dir)
	wire, _ := json.Marshal(ColorRequest{
		BaseFingerprint: d2.Fingerprint,
		RemoveEdges:     [][2]int32{{0, 1}},
	})
	if err := jx.AppendAccept(journal.AcceptRecord{
		ID: "crash-delta", Resident: true, Wire: wire,
		AcceptedUnixMS: time.Now().UnixMilli(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := jx.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec2 := openTestJournal(t, dir)
	if len(rec2.Settled) < 3 {
		t.Fatalf("recovered %d settled versions, want >= 3", len(rec2.Settled))
	}
	s2 := NewServer(Config{Devices: 2, Journal: j2, Recovery: rec2})
	defer func() { s2.Stop(); j2.Close() }()
	if got := s2.RecoveryInfo().WarmedVersions; got < 3 {
		t.Fatalf("warmed %d versions, want >= 3", got)
	}
	<-s2.RecoveryDone()
	if got := s2.reg.Counter("replay_completed_total").Value(); got != 1 {
		t.Fatalf("crash-interrupted delta replay: completed %d, want 1", got)
	}

	// The chain is live again: a brand-new mutation against the final
	// pre-crash version is served incrementally, not with unknown_base.
	ts2 := httptest.NewServer(Handler(s2))
	defer ts2.Close()
	resp, body = postColorHeaders(t, ts2, ColorRequest{
		BaseFingerprint: d2.Fingerprint,
		AddEdges:        [][2]int32{{1, 36}},
		IncludeColors:   true,
	}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart delta: %d: %s", resp.StatusCode, body)
	}
	var after ColorResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if !after.Delta {
		t.Fatalf("post-restart delta not served by the incremental engine: %+v", after)
	}
	if after.BaseFingerprint != d2.Fingerprint {
		t.Fatalf("base fingerprint echo %q, want %q", after.BaseFingerprint, d2.Fingerprint)
	}
}

func TestDeltaHTTPUnknownBaseIs404(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	resp, body := postColorHeaders(t, ts, ColorRequest{
		BaseFingerprint: "00000000deadbeef",
		AddVertices:     1,
	}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "unknown_base" {
		t.Fatalf("kind %q, want unknown_base", e.Kind)
	}
}

func TestDeltaHTTPRejectsGraphAndBase(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	resp, body := postColorHeaders(t, ts, ColorRequest{
		Gen:             "grid:3:3",
		BaseFingerprint: "0000000000000001",
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
}

func TestDeltaBinaryWireFrame(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	g := gen.Grid2D(7, 7)
	resp, body := postBinaryCSR(t, ts, graph.EncodeWireCSR(g), "resident=true", ContentTypeBinaryCSR)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary resident upload: %d: %s", resp.StatusCode, body)
	}
	var base ColorResponse
	if err := json.Unmarshal(body, &base); err != nil {
		t.Fatal(err)
	}
	baseFp, err := ParseFingerprint(base.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}

	d := &graph.Delta{AddEdges: [][2]int32{{0, 48}}, RemoveEdges: [][2]int32{{0, 1}}}
	frame := graph.EncodeWireDelta(baseFp, d)
	resp, body = postBinaryCSR(t, ts, frame, "include_colors=true", ContentTypeBinaryCSR)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary delta: %d: %s", resp.StatusCode, body)
	}
	var out ColorResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Delta {
		t.Fatalf("binary delta not served incrementally: %+v", out)
	}
	ng, wantFp, _, _ := graph.ApplyDelta(g, d)
	if out.Fingerprint != graph.FingerprintString(wantFp) {
		t.Fatalf("fingerprint %s, want %s", out.Fingerprint, graph.FingerprintString(wantFp))
	}
	if err := color.Verify(ng, out.Colors); err != nil {
		t.Fatalf("binary delta coloring invalid: %v", err)
	}
	if out.Vertices != ng.NumVertices() || out.Edges != ng.NumEdges() {
		t.Fatalf("size %d/%d, want %d/%d", out.Vertices, out.Edges, ng.NumVertices(), ng.NumEdges())
	}
}
