package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"gcolor/internal/color"
	"gcolor/internal/gen"
	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
)

// smallGraph is a fast-to-color request payload; blockerGraph holds a
// single-device worker busy for on the order of 100ms of wall time, long
// enough for the test to line up queued state behind it; slowBlockerGraph
// for on the order of a second, when several goroutines must start while
// it runs.
func smallGraph() *graph.Graph       { return gen.Grid2D(8, 8) }
func blockerGraph() *graph.Graph     { return gen.RMAT(10, 16, gen.Graph500, 1) }
func slowBlockerGraph() *graph.Graph { return gen.RMAT(12, 16, gen.Graph500, 1) }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestServerColorsProperly(t *testing.T) {
	s := NewServer(Config{Devices: 2})
	defer s.Stop()
	g := smallGraph()
	res, err := s.Submit(context.Background(), &Request{Graph: g, Algorithm: gpucolor.AlgBaseline})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := color.Verify(g, res.Colors); err != nil {
		t.Fatalf("coloring invalid: %v", err)
	}
	if res.Cached || res.Coalesced {
		t.Fatalf("first request flagged cached=%v coalesced=%v", res.Cached, res.Coalesced)
	}
	if res.Fingerprint != g.Fingerprint() {
		t.Fatalf("fingerprint mismatch")
	}
	if res.Device < 0 || res.Device >= 2 {
		t.Fatalf("device index %d out of pool range", res.Device)
	}
}

func TestCacheHitSkipsDevice(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	req := func() *Request { return &Request{Graph: smallGraph(), Algorithm: gpucolor.AlgBaseline} }
	first, err := s.Submit(context.Background(), req())
	if err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	jobsAfterFirst := s.Pool().Jobs(0)
	second, err := s.Submit(context.Background(), req())
	if err != nil {
		t.Fatalf("second Submit: %v", err)
	}
	if !second.Cached {
		t.Fatal("second identical request was not served from cache")
	}
	if second.Device != -1 {
		t.Fatalf("cache hit reported device %d, want -1", second.Device)
	}
	if got := s.Pool().Jobs(0); got != jobsAfterFirst {
		t.Fatalf("cache hit ran on the device: jobs %d -> %d", jobsAfterFirst, got)
	}
	if second.NumColors != first.NumColors {
		t.Fatalf("cached NumColors %d != original %d", second.NumColors, first.NumColors)
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheHitRate <= 0 {
		t.Fatalf("stats: hits=%d rate=%v, want 1 hit", st.CacheHits, st.CacheHitRate)
	}

	// A different seed is a different policy key: must miss.
	third, err := s.Submit(context.Background(), &Request{Graph: smallGraph(), Seed: 99})
	if err != nil {
		t.Fatalf("third Submit: %v", err)
	}
	if third.Cached {
		t.Fatal("request with different seed hit the cache")
	}
}

func TestDuplicateInFlightCoalesce(t *testing.T) {
	s := NewServer(Config{Devices: 1, Workers: 1})
	defer s.Stop()

	// Occupy the only worker so the duplicates stay in flight together.
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		if _, err := s.Submit(context.Background(), &Request{Graph: slowBlockerGraph(), NoCache: true}); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	waitFor(t, "blocker to occupy the device", func() bool {
		return s.Metrics().Gauge("devices_busy").Value() == 1
	})

	const dups = 5
	results := make(chan *Response, dups)
	errs := make(chan error, dups)
	for i := 0; i < dups; i++ {
		go func() {
			res, err := s.Submit(context.Background(), &Request{Graph: smallGraph()})
			if err != nil {
				errs <- err
				return
			}
			results <- res
		}()
	}
	var fresh, coalesced, cached int
	for i := 0; i < dups; i++ {
		select {
		case res := <-results:
			switch {
			case res.Coalesced:
				coalesced++
			case res.Cached:
				// A goroutine scheduled after the shared execution finished
				// sees the cache instead; it still never ran a device.
				cached++
			default:
				fresh++
			}
		case err := <-errs:
			t.Fatalf("duplicate Submit: %v", err)
		case <-time.After(120 * time.Second):
			t.Fatal("timed out waiting for duplicates")
		}
	}
	<-blockerDone
	if fresh != 1 {
		t.Fatalf("%d fresh executions for %d identical requests, want exactly 1 (coalesced=%d cached=%d)",
			fresh, dups, coalesced, cached)
	}
	if coalesced == 0 {
		t.Fatal("no duplicate coalesced onto the in-flight execution")
	}
	// One execution for the blocker + exactly one for all duplicates.
	if got := s.Pool().Jobs(0); got != 2 {
		t.Fatalf("device ran %d jobs, want 2 (blocker + one coalesced execution)", got)
	}
	if st := s.Stats(); st.Coalesced != int64(coalesced) {
		t.Fatalf("stats.Coalesced = %d, want %d", st.Coalesced, coalesced)
	}
}

func TestQueueFullAndShedding(t *testing.T) {
	// Exercise admission directly on the queue: deterministic, no devices.
	q := newJobQueue(2, 0.5) // shedAt = 1
	mk := func(p Priority) *job {
		return &job{ctx: context.Background(), req: &Request{Priority: p}, fl: &flight{done: make(chan struct{})}}
	}
	if err := q.push(mk(PriorityNormal)); err != nil {
		t.Fatalf("push 1 (empty queue): %v", err)
	}
	// Occupancy 1 >= shedAt: normal and low are shed, high admitted.
	if err := q.push(mk(PriorityNormal)); !errors.Is(err, ErrShedding) {
		t.Fatalf("normal push at shed threshold: err=%v, want ErrShedding", err)
	}
	if err := q.push(mk(PriorityLow)); !errors.Is(err, ErrShedding) {
		t.Fatalf("low push at shed threshold: err=%v, want ErrShedding", err)
	}
	if err := q.push(mk(PriorityHigh)); err != nil {
		t.Fatalf("high push at shed threshold: %v", err)
	}
	// Occupancy 2 == capacity: even high is rejected, and full wins over shed.
	if err := q.push(mk(PriorityHigh)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("high push at capacity: err=%v, want ErrQueueFull", err)
	}
	if err := q.push(mk(PriorityNormal)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("normal push at capacity: err=%v, want ErrQueueFull", err)
	}
}

func TestQueuePriorityOrder(t *testing.T) {
	q := newJobQueue(10, 1) // shedding disabled
	mk := func(p Priority, tag uint64) *job {
		return &job{ctx: context.Background(), req: &Request{Priority: p}, fp: tag}
	}
	for _, j := range []*job{mk(PriorityLow, 1), mk(PriorityNormal, 2), mk(PriorityHigh, 3), mk(PriorityNormal, 4), mk(PriorityHigh, 5)} {
		if err := q.push(j); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	var got []uint64
	for i := 0; i < 5; i++ {
		j, err := q.pop(context.Background(), func(*job) { t.Fatal("unexpected expiry") })
		if err != nil {
			t.Fatalf("pop: %v", err)
		}
		got = append(got, j.fp)
	}
	want := []uint64{3, 5, 2, 4, 1} // high FIFO, then normal FIFO, then low
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestDeadlineExpiredNeverReachesDevice(t *testing.T) {
	// Queue-level: a job whose context is already done is diverted to the
	// expired callback, never returned to a worker.
	q := newJobQueue(4, 1)
	ctx, cancel := context.WithCancel(context.Background())
	dead := &job{ctx: ctx, req: &Request{}, fl: &flight{done: make(chan struct{})}}
	live := &job{ctx: context.Background(), req: &Request{}, fp: 42, fl: &flight{done: make(chan struct{})}}
	if err := q.push(dead); err != nil {
		t.Fatalf("push dead: %v", err)
	}
	if err := q.push(live); err != nil {
		t.Fatalf("push live: %v", err)
	}
	cancel()
	var expired []*job
	j, err := q.pop(context.Background(), func(e *job) { expired = append(expired, e) })
	if err != nil {
		t.Fatalf("pop: %v", err)
	}
	if j.fp != 42 {
		t.Fatalf("pop returned the expired job")
	}
	if len(expired) != 1 || expired[0] != dead {
		t.Fatalf("expired callback got %d jobs, want the dead one", len(expired))
	}

	// Server-level: cancel a queued request behind a blocker; the device
	// must only ever run the blocker.
	s := NewServer(Config{Devices: 1, Workers: 1})
	defer s.Stop()
	go s.Submit(context.Background(), &Request{Graph: blockerGraph(), NoCache: true})
	waitFor(t, "blocker to occupy the device", func() bool {
		return s.Metrics().Gauge("devices_busy").Value() == 1
	})
	reqCtx, reqCancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Submit(reqCtx, &Request{Graph: smallGraph()})
		errCh <- err
	}()
	waitFor(t, "request to queue", func() bool { return s.Stats().QueueDepth >= 1 })
	reqCancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Submit returned %v, want context.Canceled", err)
	}
	waitFor(t, "expiry to be recorded", func() bool { return s.Stats().DeadlineExpired == 1 })
	if got := s.Pool().Jobs(0); got != 1 {
		t.Fatalf("device ran %d jobs, want only the blocker", got)
	}
}

func TestPoolLeasing(t *testing.T) {
	p := UniformPool(2, DeviceConfig{})
	ctx := context.Background()
	l1, err := p.Acquire(ctx)
	if err != nil {
		t.Fatalf("Acquire 1: %v", err)
	}
	l2, err := p.Acquire(ctx)
	if err != nil {
		t.Fatalf("Acquire 2: %v", err)
	}
	if l1.Index() == l2.Index() {
		t.Fatalf("two live leases share device %d", l1.Index())
	}
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded on an exhausted pool")
	}
	// A blocked Acquire honours its context.
	shortCtx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Acquire: err=%v, want DeadlineExceeded", err)
	}
	l1.Release()
	l1.Release() // idempotent
	l3, ok := p.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed after a release")
	}
	if l3.Index() != l1.Index() {
		t.Fatalf("released device %d not re-leased (got %d)", l1.Index(), l3.Index())
	}
	l2.Release()
	l3.Release()
	if p.Jobs(0)+p.Jobs(1) != 3 {
		t.Fatalf("completed leases = %d, want 3", p.Jobs(0)+p.Jobs(1))
	}
	if p.Utilization(time.Second) <= 0 {
		t.Fatal("utilization is zero after leases completed")
	}
}

func TestServerStopDrains(t *testing.T) {
	s := NewServer(Config{Devices: 2, Workers: 2})
	res, err := s.Submit(context.Background(), &Request{Graph: smallGraph()})
	if err != nil || res == nil {
		t.Fatalf("Submit before Stop: %v", err)
	}
	s.Stop()
	if _, err := s.Submit(context.Background(), &Request{Graph: smallGraph(), NoCache: true}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Stop: err=%v, want ErrClosed", err)
	}
}

// TestBatchedJobsMatchSolo: distinct small graphs queued behind a blocker
// fuse into one block-diagonal launch, and every member's coloring is
// bit-identical to the same request served by a batch-disabled server.
func TestBatchedJobsMatchSolo(t *testing.T) {
	s := NewServer(Config{Devices: 1, Workers: 1})
	defer s.Stop()
	solo := NewServer(Config{Devices: 1, Workers: 1, Batch: BatchConfig{Disabled: true}})
	defer solo.Stop()

	reqs := []*Request{
		{Graph: gen.Grid2D(8, 9), Seed: 0},
		{Graph: gen.GNM(120, 480, 2), Seed: 7},
		{Graph: gen.Star(40), Seed: 1234},
		{Graph: gen.GNM(60, 90, 9), Seed: 7},
	}

	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		if _, err := s.Submit(context.Background(), &Request{Graph: slowBlockerGraph(), NoCache: true}); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	waitFor(t, "blocker to occupy the device", func() bool {
		return s.Metrics().Gauge("devices_busy").Value() == 1
	})

	type result struct {
		i   int
		res *Response
		err error
	}
	results := make(chan result, len(reqs))
	for i, r := range reqs {
		go func(i int, r *Request) {
			res, err := s.Submit(context.Background(), &Request{Graph: r.Graph, Seed: r.Seed})
			results <- result{i, res, err}
		}(i, r)
	}
	waitFor(t, "members to queue", func() bool { return s.Stats().QueueDepth == int64(len(reqs)) })
	<-blockerDone

	got := make([]*Response, len(reqs))
	for range reqs {
		r := <-results
		if r.err != nil {
			t.Fatalf("member %d: %v", r.i, r.err)
		}
		got[r.i] = r.res
	}
	for i, r := range reqs {
		res := got[i]
		if !res.Batched || res.BatchSize != len(reqs) {
			t.Fatalf("member %d: batched=%v size=%d, want batched size %d", i, res.Batched, res.BatchSize, len(reqs))
		}
		if err := color.Verify(r.Graph, res.Colors); err != nil {
			t.Fatalf("member %d: invalid coloring: %v", i, err)
		}
		want, err := solo.Submit(context.Background(), &Request{Graph: r.Graph, Seed: r.Seed})
		if err != nil {
			t.Fatalf("member %d solo: %v", i, err)
		}
		if len(want.Colors) != len(res.Colors) {
			t.Fatalf("member %d: %d colors, solo %d", i, len(res.Colors), len(want.Colors))
		}
		for v := range want.Colors {
			if want.Colors[v] != res.Colors[v] {
				t.Fatalf("member %d: batched coloring differs from solo at vertex %d", i, v)
			}
		}
		if res.NumColors != want.NumColors {
			t.Fatalf("member %d: NumColors %d, solo %d", i, res.NumColors, want.NumColors)
		}
	}
	st := s.Stats()
	if st.Batches != 1 || st.BatchedJobs != int64(len(reqs)) {
		t.Fatalf("stats: batches=%d batched_jobs=%d, want 1 batch of %d", st.Batches, st.BatchedJobs, len(reqs))
	}

	// The batched results were cached under each member's own solo key: a
	// repeat of any member must hit without a device run.
	rep, err := s.Submit(context.Background(), &Request{Graph: reqs[1].Graph, Seed: reqs[1].Seed})
	if err != nil || !rep.Cached {
		t.Fatalf("repeat of batched member: cached=%v err=%v, want cache hit", rep != nil && rep.Cached, err)
	}
}

// TestBatchMemberFaultRetriesSolo: when one member of a fused launch comes
// back with an invalid block, only that member re-runs solo — the healthy
// members finish from the batch — and every waiter settles exactly once.
func TestBatchMemberFaultRetriesSolo(t *testing.T) {
	s := NewServer(Config{Devices: 1, Workers: 1})
	defer s.Stop()
	var faulted bool
	s.batchRunHook = func(union *graph.Graph, starts []int32, res *gpucolor.Result, err error) (*gpucolor.Result, error) {
		if err != nil || faulted || len(starts) < 3 {
			return res, err
		}
		faulted = true
		// Poison member 1's block with a monochromatic coloring — invalid
		// for any member with at least one edge — and report the run the
		// way a real damaged launch would: an InvalidColoringError carrying
		// the partial result.
		for v := starts[1]; v < starts[2]; v++ {
			res.Colors[v] = 0
		}
		return res, &gpucolor.InvalidColoringError{Result: res, Err: errors.New("injected member fault")}
	}

	reqs := []*Request{
		{Graph: gen.Grid2D(8, 9), Seed: 3},
		{Graph: gen.GNM(120, 480, 2), Seed: 7},
		{Graph: gen.Grid2D(10, 7), Seed: 11},
	}
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		if _, err := s.Submit(context.Background(), &Request{Graph: slowBlockerGraph(), NoCache: true}); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	waitFor(t, "blocker to occupy the device", func() bool {
		return s.Metrics().Gauge("devices_busy").Value() == 1
	})
	results := make(chan *Response, len(reqs))
	for _, r := range reqs {
		go func(r *Request) {
			res, err := s.Submit(context.Background(), &Request{Graph: r.Graph, Seed: r.Seed})
			if err != nil {
				t.Errorf("member: %v", err)
				results <- nil
				return
			}
			results <- res
		}(r)
	}
	waitFor(t, "members to queue", func() bool { return s.Stats().QueueDepth == int64(len(reqs)) })
	<-blockerDone

	byFP := make(map[uint64]*Response, len(reqs))
	for range reqs {
		res := <-results
		if res == nil {
			t.Fatal("a member failed")
		}
		if _, dup := byFP[res.Fingerprint]; dup {
			t.Fatalf("two responses share fingerprint %x", res.Fingerprint)
		}
		byFP[res.Fingerprint] = res
	}
	var batched, retried int
	for _, r := range reqs {
		res := byFP[r.Graph.Fingerprint()]
		if res == nil {
			t.Fatalf("no response for graph %x", r.Graph.Fingerprint())
		}
		if err := color.Verify(r.Graph, res.Colors); err != nil {
			t.Fatalf("invalid coloring after member fault: %v", err)
		}
		if res.Batched {
			batched++
		} else {
			retried++
		}
	}
	if batched != 2 || retried != 1 {
		t.Fatalf("batched=%d retried=%d, want exactly the faulted member to retry solo", batched, retried)
	}
	st := s.Stats()
	if st.BatchMemberRetries != 1 {
		t.Fatalf("BatchMemberRetries = %d, want 1", st.BatchMemberRetries)
	}
	if st.Completed != int64(len(reqs))+1 { // members + blocker
		t.Fatalf("Completed = %d, want %d", st.Completed, len(reqs)+1)
	}
}

// TestQueueGather: gather removes exactly the accepted jobs plus expired
// ones, in dequeue order, and leaves the rest popping in the original
// priority/FIFO order.
func TestQueueGather(t *testing.T) {
	q := newJobQueue(10, 1)
	mk := func(p Priority, tag uint64) *job {
		return &job{ctx: context.Background(), req: &Request{Priority: p}, fp: tag, fl: &flight{done: make(chan struct{})}}
	}
	expCtx, expCancel := context.WithCancel(context.Background())
	dead := &job{ctx: expCtx, req: &Request{}, fp: 99, fl: &flight{done: make(chan struct{})}}
	jobs := []*job{mk(PriorityNormal, 1), mk(PriorityHigh, 2), dead, mk(PriorityNormal, 3), mk(PriorityHigh, 4)}
	for _, j := range jobs {
		if err := q.push(j); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	expCancel()
	var got []uint64
	taken, expired := q.gather(func(j *job) bool {
		if j.fp%2 == 1 { // take odd tags only
			got = append(got, j.fp)
			return true
		}
		return false
	})
	if len(taken) != 2 || len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("gather took %v, want odd tags [1 3] in FIFO order", got)
	}
	if len(expired) != 1 || expired[0] != dead {
		t.Fatalf("gather diverted %d expired jobs, want the dead one", len(expired))
	}
	// The rest still pop in priority/FIFO order.
	var rest []uint64
	for i := 0; i < 2; i++ {
		j, err := q.pop(context.Background(), func(*job) { t.Fatal("unexpected expiry") })
		if err != nil {
			t.Fatalf("pop: %v", err)
		}
		rest = append(rest, j.fp)
	}
	if rest[0] != 2 || rest[1] != 4 {
		t.Fatalf("post-gather pop order %v, want [2 4]", rest)
	}
	if q.depth() != 0 {
		t.Fatalf("queue depth %d after draining, want 0", q.depth())
	}
}

func TestParseGraphSpec(t *testing.T) {
	cases := []struct {
		spec    string
		wantN   int
		wantErr bool
	}{
		{"grid:4:4", 16, false},
		{"gnm:100:200:1", 100, false},
		{"rmat:6:8:1", 64, false},
		{"complete:5", 5, false},
		{"star:9", 9, false},
		{"path:7", 7, false},
		{"cycle:7", 7, false},
		{"ba:50:3:1", 50, false},
		{"ws:60:4:10:1", 60, false},
		{"nope:1", 0, true},
		{"rmat:99:8", 0, true},
		{"grid:4", 0, true},
		{"gnm:abc:2", 0, true},
	}
	for _, c := range cases {
		g, err := ParseGraphSpec(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("%q: expected error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if g.NumVertices() != c.wantN {
			t.Errorf("%q: n=%d, want %d", c.spec, g.NumVertices(), c.wantN)
		}
	}
	// Determinism: the same spec parses to the same fingerprint.
	a, _ := ParseGraphSpec("rmat:8:8:3")
	b, _ := ParseGraphSpec("rmat:8:8:3")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same spec produced different graphs")
	}
}
