package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"gcolor/internal/color"
	"gcolor/internal/graph"
)

// This file is the incremental coloring engine: the versioned resident
// graph store and the delta submission path. A client uploads a graph with
// Resident set, then streams mutations as delta requests (base fingerprint
// + edge add/remove + vertex appends). The server applies each delta to the
// resident base, recolors only the affected frontier with the repair
// machinery (color.RecolorFrontier), and pins the successor as a new
// version — work proportional to the mutation, not the graph. When the
// frontier exceeds the configured budget the delta falls back to a full
// recolor of the successor through the normal queue/device path, and when
// the base fingerprint is unknown the request fails with a typed 404 so the
// client re-uploads the full graph.
//
// A delta-produced version's fingerprint is the successor's *content*
// fingerprint (graph.ApplyDelta computes it streaming), so the version
// chain's identity collapses to content identity: the successor shares
// result-cache, coalescing, and cluster-routing keys with a from-scratch
// upload of the same graph, and the cache gains an entry under the new
// fingerprint the moment the delta settles — entries update forward instead
// of being invalidated.

// DeltaConfig tunes the incremental coloring engine. Zero values take the
// documented defaults.
type DeltaConfig struct {
	// Disabled turns the engine off: no versions are pinned and every
	// delta request fails with UnknownBaseError.
	Disabled bool
	// Entries sizes the versioned graph store LRU (default 64; negative
	// disables pinning, like Disabled).
	Entries int
	// FrontierFraction is the recolor budget: a delta whose frontier
	// exceeds this fraction of the successor's vertex count falls back to
	// a full recolor (default 0.2). Values >= 1 never fall back on size.
	FrontierFraction float64
}

func (c DeltaConfig) withDefaults() DeltaConfig {
	switch {
	case c.Entries < 0:
		c.Entries = 0
	case c.Entries == 0:
		c.Entries = 64
	}
	if c.Disabled {
		c.Entries = 0
	}
	if c.FrontierFraction <= 0 {
		c.FrontierFraction = 0.2
	}
	return c
}

// UnknownBaseError is the typed failure of a delta request whose base
// fingerprint is not resident (never uploaded, evicted, or lost across a
// restart whose journal no longer held it). The client owns the recovery:
// re-upload the full graph with Resident set, then resume the stream.
type UnknownBaseError struct{ Fingerprint uint64 }

func (e *UnknownBaseError) Error() string {
	return fmt.Sprintf("serve: unknown base version %s: re-upload the full graph as resident and retry the delta",
		graph.FingerprintString(e.Fingerprint))
}

// BadDeltaError wraps a malformed delta (endpoints out of range, self
// loops, vertex-cap overflow) — a client error, not a serving failure.
type BadDeltaError struct{ Err error }

func (e *BadDeltaError) Error() string { return e.Err.Error() }
func (e *BadDeltaError) Unwrap() error { return e.Err }

// ParseFingerprint parses the 16-hex-digit form produced by
// graph.FingerprintString — the wire spelling of base_fingerprint.
func ParseFingerprint(s string) (uint64, error) {
	fp, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: bad fingerprint %q", s)
	}
	return fp, nil
}

// versionStore is the fixed-capacity LRU of resident graph versions:
// fingerprint -> (graph, proper coloring). Entries are immutable once
// stored (the coloring is copied in, and readers copy out), so lookups can
// hand back the entry without further locking.
type versionStore struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *versionEntry
	byFp  map[uint64]*list.Element
}

type versionEntry struct {
	fp     uint64
	g      *graph.Graph
	colors []int32
}

func newVersionStore(capacity int) *versionStore {
	if capacity < 0 {
		capacity = 0
	}
	return &versionStore{cap: capacity, order: list.New(), byFp: make(map[uint64]*list.Element)}
}

func (c *versionStore) get(fp uint64) (*versionEntry, bool) {
	if c.cap == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byFp[fp]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*versionEntry), true
}

// put pins (or refreshes) a version. The coloring is copied; the graph is
// shared (Graph is immutable). Colorings that do not match the graph are
// refused — a truncated journal record must not poison the chain.
func (c *versionStore) put(fp uint64, g *graph.Graph, colors []int32) {
	if c.cap == 0 || g == nil || len(colors) != g.NumVertices() {
		return
	}
	stored := make([]int32, len(colors))
	copy(stored, colors)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byFp[fp]; ok {
		e := el.Value.(*versionEntry)
		e.g, e.colors = g, stored
		c.order.MoveToFront(el)
		return
	}
	c.byFp[fp] = c.order.PushFront(&versionEntry{fp: fp, g: g, colors: stored})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.byFp, el.Value.(*versionEntry).fp)
	}
}

func (c *versionStore) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// export snapshots every version, least recently used first, so replaying
// the list through put reproduces the recency order. Used by journal
// snapshot compaction.
func (c *versionStore) export() []*versionEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*versionEntry, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		out = append(out, el.Value.(*versionEntry))
	}
	return out
}

// deltaScratch pools the frontier-recolor buffers: a warm steady-state
// delta stream recolors with zero scratch allocations.
var deltaScratch = sync.Pool{New: func() any { return new(color.Scratch) }}

// submitDelta serves one delta request: resolve the base version, apply
// the mutation, and either frontier-recolor on the host (the incremental
// hit path — no queue, no device) or fall back to a full recolor of the
// successor through the normal admission path. Either way the successor is
// pinned as a new resident version and cached under its own fingerprint.
func (s *Server) submitDelta(ctx context.Context, req *Request) (*Response, error) {
	if req.Graph != nil {
		return nil, errors.New("serve: delta request must not also carry a graph")
	}
	s.reg.Counter("requests_total").Inc()
	s.reg.Counter("delta_requests_total").Inc()
	d := req.Delta
	if d == nil {
		d = &graph.Delta{}
	}

	// Idempotent replay first, exactly as in Submit — and through drain.
	if res, ok := s.idem.get(req.IdemKey); ok {
		s.reg.Counter("idem_hits_total").Inc()
		hit := cloneHit(res)
		hit.Cached = true
		hit.IdempotentReplay = true
		hit.Device = -1
		hit.Wait, hit.Exec = 0, 0
		hit.RequestID = req.RequestID
		return hit, nil
	}

	base, ok := s.versions.get(req.BaseFingerprint)
	if !ok {
		s.reg.Counter("delta_unknown_base_total").Inc()
		return nil, &UnknownBaseError{Fingerprint: req.BaseFingerprint}
	}
	ng, fp, frontier, err := graph.ApplyDelta(base.g, d)
	if err != nil {
		return nil, &BadDeltaError{Err: err}
	}

	// From here on the request is for the successor graph: it shares
	// cache, coalescing, and shard-policy keys with a full upload of the
	// same content, and its result is pinned for the next delta.
	req.Graph = ng
	req.Fingerprint = fp
	req.Resident = true
	shards := s.effectiveShards(req)
	key := keyOf(req, fp, shards)
	if !req.NoCache {
		if res, ok := s.cache.get(key); ok {
			s.reg.Counter("cache_hits").Inc()
			s.versions.put(fp, ng, res.Colors) // re-pin: the chain continues
			hit := cloneHit(res)
			hit.Cached = true
			hit.Delta = true
			hit.FrontierSize = len(frontier)
			hit.Vertices = ng.NumVertices()
			hit.Edges = ng.NumEdges()
			hit.Device = -1
			hit.Wait, hit.Exec = 0, 0
			hit.RequestID = req.RequestID
			return hit, nil
		}
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}

	budget := int(s.cfg.Delta.FrontierFraction * float64(ng.NumVertices()))
	if len(frontier) > budget {
		return s.deltaFallback(ctx, req, fp, key, shards, ng, len(frontier))
	}

	start := time.Now()
	n := ng.NumVertices()
	colors := make([]int32, n)
	copy(colors, base.colors)
	for i := len(base.colors); i < n; i++ {
		colors[i] = color.Uncolored
	}
	sc := deltaScratch.Get().(*color.Scratch)
	recolored := color.RecolorFrontier(ng, colors, frontier, sc)
	deltaScratch.Put(sc)
	if verr := color.Verify(ng, colors); verr != nil {
		// Unreachable while the base coloring is proper (the frontier
		// covers every changed neighbourhood); if a bug ever breaks the
		// contract, degrade to a full recolor rather than serve a bad
		// coloring.
		return s.deltaFallback(ctx, req, fp, key, shards, ng, len(frontier))
	}
	s.reg.Counter("delta_hits").Inc()
	s.reg.Histogram("delta_frontier_size").Add(int64(len(frontier)))
	res := &Response{
		Fingerprint:  fp,
		Colors:       colors,
		NumColors:    color.NumColors(colors),
		Delta:        true,
		FrontierSize: len(frontier),
		Repaired:     recolored,
		Shards:       1,
		Vertices:     n,
		Edges:        ng.NumEdges(),
		Device:       -1,
		Exec:         time.Since(start),
		RequestID:    req.RequestID,
	}
	s.reg.Counter("completed_total").Inc()
	if s.jrnl != nil && req.RequestID != "" && len(req.Wire) > 0 {
		// Journal the delta like any replayable request. The accept's
		// Resident flag and wire form (base fingerprint + edit lists) let
		// crash replay rebuild this version from its settled pair without
		// re-running anything.
		s.journalAccept(ctx, req, key)
		s.journalDone(req, key, res)
	}
	s.versions.put(fp, ng, colors)
	if !req.NoCache {
		s.cache.put(key, res)
	}
	s.idem.put(req.IdemKey, res, req.NoCache, key.policy)
	// The stored res is canonical (cache + idem share it); the caller gets
	// its own Colors copy, like every other path out of Submit.
	return cloneHit(res), nil
}

// deltaFallback recolors the successor graph from scratch through the
// normal admission path (queue, devices, sharding, batching) and pins the
// result. The caller still gets delta evidence: Delta + DeltaFallback set,
// FrontierSize reporting why the incremental path was not taken.
func (s *Server) deltaFallback(ctx context.Context, req *Request, fp uint64, key cacheKey, shards int, ng *graph.Graph, frontier int) (*Response, error) {
	s.reg.Counter("delta_fallbacks_total").Inc()
	res, err := s.admit(ctx, req, fp, key, shards)
	if err != nil {
		return nil, err
	}
	s.versions.put(fp, ng, res.Colors)
	res.Delta = true
	res.DeltaFallback = true
	res.FrontierSize = frontier
	res.Vertices = ng.NumVertices()
	res.Edges = ng.NumEdges()
	return res, nil
}

// journalDone writes the completion record for a request settled outside
// the job queue (the incremental delta path) and clears its pendAccepts
// mirror — the counterpart of journalFinish for jobless completions.
func (s *Server) journalDone(req *Request, key cacheKey, res *Response) {
	s.pendMu.Lock()
	delete(s.pendAccepts, req.RequestID)
	s.pendMu.Unlock()
	rec := completionRecord(req.RequestID, req.IdemKey, key, res, nil, req.NoCache)
	if aerr := s.jrnl.AppendComplete(rec); aerr != nil {
		s.reg.Counter("journal_append_errors_total").Inc()
	}
}
