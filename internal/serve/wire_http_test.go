package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"gcolor/internal/color"
	"gcolor/internal/gen"
	"gcolor/internal/graph"
	"gcolor/internal/journal"
)

func postBinaryCSR(t *testing.T, ts *httptest.Server, frame []byte, query, contentType string) (*http.Response, []byte) {
	t.Helper()
	url := ts.URL + "/color"
	if query != "" {
		url += "?" + query
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST binary: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestBinaryCSRIngest drives the binary CSR fast path end to end: a frame
// POSTed with options in the query string colors correctly, lands in the
// same cache slot as its JSON twin (same fingerprint, same policy key —
// the wire format is invisible to everything past ingest), and corrupt
// frames or bad query options fail with 400 before any work is queued.
func TestBinaryCSRIngest(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	g := gen.GNM(150, 450, 3)
	frame := graph.EncodeWireCSR(g)

	resp, body := postBinaryCSR(t, ts, frame,
		"alg=hybrid&seed=9&include_colors=true", ContentTypeBinaryCSR)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary POST status %d: %s", resp.StatusCode, body)
	}
	var bin ColorResponse
	if err := json.Unmarshal(body, &bin); err != nil {
		t.Fatal(err)
	}
	if bin.Vertices != 150 || len(bin.Colors) != 150 {
		t.Fatalf("binary response: %+v", bin)
	}
	if err := color.Verify(g, bin.Colors); err != nil {
		t.Fatalf("binary-ingested coloring invalid: %v", err)
	}

	// The JSON twin of the same graph and options must hit the cache entry
	// the binary request populated: same streaming fingerprint, same key.
	var el bytes.Buffer
	if err := graph.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	resp, body = postColor(t, ts, ColorRequest{Graph: el.String(), Alg: "hybrid", Seed: 9})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON twin status %d: %s", resp.StatusCode, body)
	}
	var js ColorResponse
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if !js.Cached {
		t.Fatalf("JSON twin missed the binary request's cache entry: %+v", js)
	}
	if js.Fingerprint != bin.Fingerprint {
		t.Fatalf("fingerprint differs across wire formats: %s vs %s", js.Fingerprint, bin.Fingerprint)
	}

	if got := s.Stats().WireBinaryRequests; got != 1 {
		t.Fatalf("WireBinaryRequests = %d, want 1", got)
	}
	mresp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(mbuf.String(), "wire_binary_requests_total 1") {
		t.Fatalf("metricsz missing wire_binary_requests_total 1:\n%s", mbuf.String())
	}

	// Media-type parameters are ignored when matching.
	resp, body = postBinaryCSR(t, ts, frame, "alg=hybrid&seed=9", ContentTypeBinaryCSR+"; charset=utf-8")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parameterized content type: status %d: %s", resp.StatusCode, body)
	}

	// Failure modes: truncated frame, garbage magic, unparsable option.
	for name, tc := range map[string]struct {
		frame []byte
		query string
	}{
		"truncated":  {frame[:len(frame)-4], ""},
		"bad magic":  {[]byte("nope, not a frame"), ""},
		"bad option": {frame, "seed=banana"},
	} {
		resp, body := postBinaryCSR(t, ts, tc.frame, tc.query, ContentTypeBinaryCSR)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Kind != "bad_request" {
			t.Errorf("%s: error body %s", name, body)
		}
	}
}

// TestBinaryIngestJournalReplay pins the replay envelope: a binary upload
// journals a JSON ColorRequest carrying the frame base64-wrapped, so a
// restarted server can warm its cache from the completion and re-run a
// crash-interrupted binary job from the accept record alone.
func TestBinaryIngestJournalReplay(t *testing.T) {
	dir := t.TempDir()
	j1, rec1 := openTestJournal(t, dir)
	s1 := NewServer(Config{Devices: 1, Journal: j1, Recovery: rec1})
	ts1 := httptest.NewServer(Handler(s1))

	served := gen.GNM(120, 360, 11)
	resp, body := postBinaryCSR(t, ts1, graph.EncodeWireCSR(served), "alg=jp", ContentTypeBinaryCSR)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gen 1 binary POST: status %d: %s", resp.StatusCode, body)
	}
	var first ColorResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.Stop()

	// Fabricate a crash-interrupted binary job: an accept record whose wire
	// payload is exactly the envelope handleColor synthesizes, with no
	// completion behind it.
	pending := gen.Grid2D(9, 9)
	env, err := json.Marshal(&ColorRequest{
		GraphCSRB64: base64.StdEncoding.EncodeToString(graph.EncodeWireCSR(pending)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.AppendAccept(journal.AcceptRecord{
		ID: "bin-crash", Wire: env, AcceptedUnixMS: time.Now().UnixMilli(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec2 := openTestJournal(t, dir)
	if len(rec2.Completions) < 1 || len(rec2.Pending) != 1 {
		t.Fatalf("recovered %d completions / %d pending, want >=1 / 1",
			len(rec2.Completions), len(rec2.Pending))
	}
	s2 := NewServer(Config{Devices: 1, Journal: j2, Recovery: rec2})
	defer func() { s2.Stop(); j2.Close() }()
	select {
	case <-s2.RecoveryDone():
	case <-time.After(10 * time.Second):
		t.Fatal("recovery did not settle")
	}
	if ri := s2.RecoveryInfo(); ri.ReplayCompleted != 1 || ri.ReplayFailed != 0 {
		t.Fatalf("replay verdict: %+v", ri)
	}

	// The served graph answers warm, under the same fingerprint, whichever
	// wire format asks.
	ts2 := httptest.NewServer(Handler(s2))
	defer ts2.Close()
	resp, body = postBinaryCSR(t, ts2, graph.EncodeWireCSR(served), "alg=jp", ContentTypeBinaryCSR)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gen 2 binary POST: status %d: %s", resp.StatusCode, body)
	}
	var warm ColorResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || warm.Fingerprint != first.Fingerprint {
		t.Fatalf("restarted server not warm for binary request: %+v vs %+v", warm, first)
	}

	// The replayed crash job is servable from cache too.
	resp, body = postBinaryCSR(t, ts2, graph.EncodeWireCSR(pending), "", ContentTypeBinaryCSR)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed graph POST: status %d: %s", resp.StatusCode, body)
	}
	var replayed ColorResponse
	if err := json.Unmarshal(body, &replayed); err != nil {
		t.Fatal(err)
	}
	if !replayed.Cached {
		t.Fatalf("crash-replayed binary job's result not cached: %+v", replayed)
	}
}

// TestBinaryIngestAllocBudget is the ISSUE's ingest gate: steady-state, a
// binary CSR upload must allocate at most 10% of what the JSON/edge-list
// path allocates for the same graph. Both requests answer from cache, so
// the measurement isolates ingest (body read, decode, request build,
// response encode) from coloring.
func TestBinaryIngestAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budget only holds without it")
	}
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	h := Handler(s)

	g := gen.GNM(2000, 8000, 1)
	frame := graph.EncodeWireCSR(g)
	var el bytes.Buffer
	if err := graph.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	jsonBody, err := json.Marshal(&ColorRequest{Graph: el.String()})
	if err != nil {
		t.Fatal(err)
	}

	do := func(body []byte, contentType string) {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, "/color", bytes.NewReader(body))
		req.Header.Set("Content-Type", contentType)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}

	// Warm both paths (and the result cache) so the measured runs are pure
	// ingest + cache hit.
	do(jsonBody, "application/json")
	do(frame, ContentTypeBinaryCSR)

	const runs = 8
	measure := func(body []byte, contentType string) uint64 {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < runs; i++ {
			do(body, contentType)
		}
		runtime.ReadMemStats(&after)
		return (after.Mallocs - before.Mallocs) / runs
	}

	jsonAllocs := measure(jsonBody, "application/json")
	binAllocs := measure(frame, ContentTypeBinaryCSR)
	t.Logf("per-request ingest allocations: json=%d binary=%d", jsonAllocs, binAllocs)
	if binAllocs*10 > jsonAllocs {
		t.Fatalf("binary ingest allocates %d objects/request, more than 10%% of the JSON path's %d",
			binAllocs, jsonAllocs)
	}
}
