package serve

import (
	"errors"
	"time"

	"gcolor/internal/color"
	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
	"gcolor/internal/journal"
)

// This file is the block-diagonal kernel batching engine: the small-graph
// counterpart to sharding. Sharding splits one big graph across several
// devices; batching fuses several small graphs into one device launch.
// A worker that dequeues a batch-eligible job gathers compatible queued
// jobs (same algorithm/threshold/policy/fused class — seeds may differ),
// concatenates their CSRs into a disjoint union, and colors the union in
// a single run through one pooled runner with a per-member priority
// segment carrying each member's own seed. Because the union has no
// cross-member arcs and every kernel's decisions are component-local
// given the priorities, each member's slice of the union coloring is
// bit-identical to the solo run it replaces (gpucolor's batch tests pin
// this); splitting the result is a slice copy, not a repair problem.
//
// The launch-count arithmetic is the point: K queued small graphs cost K
// full kernel-ladder executions solo but one execution batched, and the
// simulated device's per-launch overhead (kernel setup, priority fill,
// worklist management) amortizes across members exactly the way the
// paper's kernel-fusion argument amortizes launch overhead across
// phases.

// batchEligible reports whether j may join a fused launch: single-device
// (below the shard auto thresholds), within the per-member size caps, and
// not carrying a per-job cycle budget (the fused run is one plain launch;
// a budgeted job's accounting would be meaningless against batch cycles).
func (s *Server) batchEligible(j *job) bool {
	c := s.cfg.Batch
	if c.Disabled || c.MaxJobs < 2 {
		return false
	}
	if j.shards != 1 || j.req.CycleBudget > 0 {
		return false
	}
	g := j.req.Graph
	return g.NumVertices() <= c.MaxVertices && g.NumEdges()*2 <= c.MaxEdges
}

// batchClass folds the request knobs that every member of a fused launch
// must share. Seed is deliberately absent — per-member seeds ride in the
// priority segments — and so are MaxRetries/NoCPUFallback, which only
// matter on the solo-retry path, where each member's own values apply.
func batchClass(r *Request) uint64 {
	k := uint64(0x517cc1b727220a95)
	mix := func(v uint64) {
		k ^= v
		k *= 0x100000001b3
	}
	mix(uint64(r.Algorithm))
	mix(uint64(gpucolor.NormalizeHybridThreshold(r.HybridThreshold)))
	mix(uint64(r.Policy))
	if r.Fused {
		mix(1)
	} else {
		mix(2)
	}
	return k
}

// gatherBatch assembles a batch around a freshly popped job: nil/solo when
// the seed job is ineligible or no compatible work is queued, otherwise
// the member list (seed first, then queue order). Expired jobs swept up by
// the gather are failed exactly as pop would have failed them.
func (s *Server) gatherBatch(seed *job) []*job {
	if !s.batchEligible(seed) {
		return nil
	}
	c := s.cfg.Batch
	class := batchClass(seed.req)
	members := []*job{seed}
	verts := seed.req.Graph.NumVertices()
	arcs := seed.req.Graph.NumEdges() * 2
	accept := func(j *job) bool {
		if len(members) >= c.MaxJobs {
			return false
		}
		if !s.batchEligible(j) || batchClass(j.req) != class {
			return false
		}
		nv, na := j.req.Graph.NumVertices(), j.req.Graph.NumEdges()*2
		if verts+nv > c.MaxVertices || arcs+na > c.MaxEdges {
			return false
		}
		members = append(members, j)
		verts += nv
		arcs += na
		return true
	}
	_, expired := s.queue.gather(accept)
	for _, ej := range expired {
		s.expireJob(ej)
	}
	if len(members) == 1 && c.Linger > 0 {
		// Lone eligible job with lingering enabled: give company a bounded
		// chance to arrive before committing to a solo run.
		time.Sleep(c.Linger)
		s.reg.Histogram("batch_linger_us").Add(c.Linger.Microseconds())
		_, expired = s.queue.gather(accept)
		for _, ej := range expired {
			s.expireJob(ej)
		}
	}
	if len(members) > 1 {
		s.reg.Gauge("queue_depth").Set(int64(s.queue.depth()))
	}
	return members
}

// runBatch executes one fused launch: concatenate the members into a
// block-diagonal union, color it once on one leased device with
// per-member priority segments, split the verified coloring back into
// per-member responses, and settle every member — grouped journal
// completions (one fsync), per-member cache and idempotency entries
// under each member's own solo key (so a batched result serves future
// solo requests of the same graph), every waiter released exactly once.
// A member that fails verification retries solo through the full
// resilient path; the others are unaffected.
func (s *Server) runBatch(members []*job) {
	s.reg.Counter("batches_total").Inc()
	s.reg.Counter("batched_jobs_total").Add(int64(len(members)))
	s.reg.Histogram("batch_size").Add(int64(len(members)))

	waits := make([]time.Duration, len(members))
	graphs := make([]*graph.Graph, len(members))
	for i, j := range members {
		waits[i] = time.Since(j.enqueued)
		s.reg.Histogram("wait_us").Add(waits[i].Microseconds())
	}
	for i, j := range members {
		graphs[i] = j.req.Graph
	}
	union, starts := graph.ConcatDisjoint(graphs...)
	segs := make([]gpucolor.PrioritySegment, len(members))
	for i, j := range members {
		segs[i] = gpucolor.PrioritySegment{Start: starts[i], End: starts[i+1], Seed: j.req.Seed}
	}
	head := members[0].req

	lease, err := s.pool.acquire(s.baseCtx, -1)
	if err != nil {
		// Pool gone (shutdown): fail everyone with the acquire error.
		for _, j := range members {
			s.failJob(j, &acquireError{err: err})
		}
		return
	}
	busy := s.reg.Gauge("devices_busy")
	busy.Add(1)
	dev := lease.Device()
	dev.Policy = head.Policy
	var faultsBefore int64
	if dev.Fault != nil {
		faultsBefore = dev.Fault.Stats().Injected()
	}
	opt := gpucolor.Options{
		HybridThreshold:  head.HybridThreshold,
		Fused:            head.Fused,
		PrioritySegments: segs,
	}
	start := time.Now()
	res, runErr := lease.Runner().Color(union, head.Algorithm, opt)
	exec := time.Since(start)
	if s.batchRunHook != nil {
		res, runErr = s.batchRunHook(union, starts, res, runErr)
	}
	var faultsDelta int64
	if dev.Fault != nil {
		faultsDelta = dev.Fault.Stats().Injected() - faultsBefore
	}
	kind := gpucolor.OutcomeSuccess
	if runErr != nil {
		kind = gpucolor.Classify(nil, runErr)
	}
	lease.Observe(kind, exec, faultsDelta)
	busy.Add(-1)
	device := lease.Index()
	lease.Release()
	s.reg.Histogram("exec_us").Add(exec.Microseconds())
	// The batch exec is deliberately not fed into the hedge tracker: its
	// tail estimate calibrates solo dispatches, and a fused launch is
	// structurally longer than the solo jobs it replaces.

	// Decide per member. On a clean run the union coloring is verified as
	// a whole, which implies every block is proper. On an invalid-coloring
	// failure the partial result is salvaged per member: blocks that
	// verify finish from the batch, the rest retry solo. Any other failure
	// retries everyone solo — the members lose nothing but the latency of
	// the failed fused attempt.
	var partial []int32
	var ice *gpucolor.InvalidColoringError
	switch {
	case runErr == nil:
		partial = res.Colors
	case errors.As(runErr, &ice) && ice.Result != nil && len(ice.Result.Colors) == union.NumVertices():
		partial = ice.Result.Colors
	}

	finished := make([]*job, 0, len(members))
	resps := make([]*Response, 0, len(members))
	var retries []*job
	var retryWaits []time.Duration
	for i, j := range members {
		var sub []int32
		if partial != nil {
			sub = partial[starts[i]:starts[i+1]]
		}
		if sub == nil || (runErr != nil && color.Verify(graphs[i], sub) != nil) {
			retries = append(retries, j)
			retryWaits = append(retryWaits, waits[i])
			continue
		}
		colors := make([]int32, len(sub))
		copy(colors, sub)
		r := res
		if ice != nil {
			r = ice.Result
		}
		resps = append(resps, &Response{
			Fingerprint: j.fp,
			Colors:      colors,
			NumColors:   distinctColors(colors),
			Cycles:      r.Cycles,
			Iterations:  r.Iterations,
			Batched:     true,
			BatchSize:   len(members),
			Shards:      1,
			Device:      device,
			Wait:        waits[i],
			Exec:        exec,
		})
		finished = append(finished, j)
	}
	s.finishBatchMembers(finished, resps)
	for i, j := range retries {
		s.reg.Counter("batch_member_retries_total").Inc()
		s.runJob(j, retryWaits[i])
	}
}

// finishBatchMembers settles successfully batched members: one grouped
// journal append (one fsync under FsyncAlways, however many members), then
// per-member idempotency, cache, coalescing-map, and waiter release — the
// same steps and ordering as finishJob, amortized.
func (s *Server) finishBatchMembers(members []*job, resps []*Response) {
	if len(members) == 0 {
		return
	}
	var recs []journal.CompleteRecord
	for i, j := range members {
		if !j.journaled {
			continue
		}
		s.pendMu.Lock()
		delete(s.pendAccepts, j.req.RequestID)
		s.pendMu.Unlock()
		recs = append(recs, completionRecord(j.req.RequestID, j.req.IdemKey, j.key, resps[i], nil, j.req.NoCache))
	}
	if len(recs) > 0 {
		if err := s.jrnl.AppendCompletes(recs); err != nil {
			s.reg.Counter("journal_append_errors_total").Inc()
		}
	}
	for i, j := range members {
		s.reg.Counter("completed_total").Inc()
		s.idem.put(j.req.IdemKey, resps[i], j.req.NoCache, j.key.policy)
		if !j.req.NoCache {
			// Cache before dropping the flight, as in runJob: a request
			// arriving between the two sees either the flight or the cache.
			s.cache.put(j.key, resps[i])
			s.dropInflight(j.key)
		}
		j.fl.complete(resps[i], nil)
	}
}

// distinctColors counts the distinct colors in use, matching the solo
// path's Result.NumColors semantics (distinct count, not max+1).
func distinctColors(colors []int32) int {
	maxc := int32(-1)
	for _, c := range colors {
		if c > maxc {
			maxc = c
		}
	}
	if maxc < 0 {
		return 0
	}
	seen := make([]bool, maxc+1)
	n := 0
	for _, c := range colors {
		if c >= 0 && !seen[c] {
			seen[c] = true
			n++
		}
	}
	return n
}
