package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestComputeRetryAfter table-drives the Retry-After policy across the
// rejection kinds: queue_full waits the full backlog drain estimate,
// shedding half of it, draining a flat instance-replacement hint, and
// everything is clamped to [1, 30].
func TestComputeRetryAfter(t *testing.T) {
	cases := []struct {
		name      string
		kind      string
		depth     int
		devices   int
		execP50us int64
		draining  bool
		want      int
	}{
		{name: "queue_full shallow backlog", kind: "queue_full", depth: 4, devices: 4, execP50us: 100_000, want: 1},
		{name: "queue_full deep backlog", kind: "queue_full", depth: 200, devices: 4, execP50us: 100_000, want: 5},
		{name: "queue_full ceils partial seconds", kind: "queue_full", depth: 60, devices: 4, execP50us: 100_000, want: 2},
		{name: "queue_full clamped to max", kind: "queue_full", depth: 10_000, devices: 1, execP50us: 500_000, want: 30},
		{name: "shedding halves the estimate", kind: "shedding", depth: 200, devices: 4, execP50us: 100_000, want: 3},
		{name: "shedding still at least min", kind: "shedding", depth: 1, devices: 8, execP50us: 1000, want: 1},
		{name: "draining flat hint", kind: "draining", depth: 500, devices: 4, execP50us: 100_000, want: 5},
		{name: "closed flat hint", kind: "closed", depth: 0, devices: 4, execP50us: 0, want: 5},
		{name: "draining flag wins over kind", kind: "queue_full", depth: 500, devices: 4, execP50us: 100_000, draining: true, want: 5},
		{name: "cold server uses default p50", kind: "queue_full", depth: 400, devices: 4, execP50us: 0, want: 5},
		{name: "zero devices defended", kind: "queue_full", depth: 10, devices: 0, execP50us: 100_000, want: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := computeRetryAfter(tc.kind, tc.depth, tc.devices, tc.execP50us, tc.draining)
			if got != tc.want {
				t.Errorf("computeRetryAfter(%q, depth=%d, dev=%d, p50=%d, draining=%v) = %d, want %d",
					tc.kind, tc.depth, tc.devices, tc.execP50us, tc.draining, got, tc.want)
			}
		})
	}
}

// TestRetryAfterHeaderOnDrain checks the HTTP layer emits the computed
// hint (not the old hardcoded "1") on a draining 503.
func TestRetryAfterHeaderOnDrain(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	s.Stop() // drained: submissions now fail with ErrDraining

	resp, body := postColor(t, ts, ColorRequest{Gen: "grid:4:4"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Fatalf("Retry-After = %q, want %q (drain hint)", got, "5")
	}
}
