package serve

import (
	"context"
	"math"
	"testing"
)

// TestShedFractionNormalization pins newJobQueue's handling of degenerate
// shed fractions: NaN and non-positive values fall back to the default
// threshold instead of silently disabling shedding; only fraction >= 1 —
// the documented opt-out — disables it.
func TestShedFractionNormalization(t *testing.T) {
	const capacity = 100
	cases := []struct {
		name     string
		fraction float64
		want     int // expected shedAt
	}{
		{"default", 0.75, 75},
		{"half", 0.5, 50},
		{"zero-defaults", 0, 75},
		{"negative-defaults", -0.5, 75},
		{"nan-defaults", math.NaN(), 75},
		{"neg-inf-defaults", math.Inf(-1), 75},
		{"one-disables", 1, capacity},
		{"above-one-disables", 2.5, capacity},
		{"pos-inf-disables", math.Inf(1), capacity},
		{"tiny-floor", 0.001, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := newJobQueue(capacity, tc.fraction)
			if q.shedAt != tc.want {
				t.Fatalf("fraction %v: shedAt = %d, want %d", tc.fraction, q.shedAt, tc.want)
			}
		})
	}
}

// TestShedFractionAdmission exercises the normalized threshold end to end:
// a NaN fraction must still shed sub-high work at the default occupancy.
func TestShedFractionAdmission(t *testing.T) {
	q := newJobQueue(4, math.NaN()) // normalized to 0.75 -> shedAt 3
	mkJob := func(p Priority) *job {
		return &job{ctx: context.Background(), req: &Request{Priority: p}, fl: &flight{done: make(chan struct{})}}
	}
	for i := 0; i < 3; i++ {
		if err := q.push(mkJob(PriorityNormal)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := q.push(mkJob(PriorityNormal)); err != ErrShedding {
		t.Fatalf("normal push at shed threshold: err = %v, want ErrShedding", err)
	}
	if err := q.push(mkJob(PriorityHigh)); err != nil {
		t.Fatalf("high push at shed threshold: %v", err)
	}
}

// TestFlushRequiresClosedQueue pins flush's documented precondition: an
// open-queue flush would race concurrent pushes and strand jobs, so it
// must panic instead of proceeding.
func TestFlushRequiresClosedQueue(t *testing.T) {
	t.Run("open-panics", func(t *testing.T) {
		q := newJobQueue(4, 0.75)
		defer func() {
			if recover() == nil {
				t.Fatal("flush on an open queue did not panic")
			}
		}()
		q.flush(func(*job) {})
	})
	t.Run("closed-flushes", func(t *testing.T) {
		q := newJobQueue(4, 0.75)
		j := &job{ctx: context.Background(), req: &Request{}, fl: &flight{done: make(chan struct{})}}
		if err := q.push(j); err != nil {
			t.Fatalf("push: %v", err)
		}
		q.close()
		var got int
		if n := q.flush(func(*job) { got++ }); n != 1 || got != 1 {
			t.Fatalf("flush returned %d (callback %d), want 1", n, got)
		}
		if q.depth() != 0 {
			t.Fatalf("queue depth %d after flush", q.depth())
		}
	})
}
