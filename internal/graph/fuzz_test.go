package graph

import (
	"strings"
	"testing"
)

// The fuzz targets drive the text parsers with arbitrary bytes through the
// small-cap variants (so a hostile size declaration cannot OOM the fuzzing
// harness) and hold two invariants: the parser never panics, and any graph
// it does accept passes the full CSR structural validation.

const fuzzMaxVertices = 1 << 16

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n2 0\n")
	f.Add("# n 6\n0 1\n")
	f.Add("# comment\n% comment\n\n3 4\n")
	f.Add("-1 2\n")
	f.Add("0 99999999999999999999\n")
	f.Add("# n 999999999\n")
	f.Add("0\n")
	f.Add("a b c\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := readEdgeListLimit(strings.NewReader(in), fuzzMaxVertices)
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted input built an invalid graph: %v\ninput: %q", verr, in)
		}
		if g.NumVertices() > fuzzMaxVertices {
			t.Fatalf("vertex count %d exceeds the cap", g.NumVertices())
		}
	})
}

func FuzzDIMACS(f *testing.F) {
	f.Add("p edge 4 3\ne 1 2\ne 2 3\ne 3 4\n")
	f.Add("c comment\np edge 2 1\ne 1 2\n")
	f.Add("p edge 0 0\n")
	f.Add("e 1 2\n")
	f.Add("p edge 2 1\ne 1 3\n")
	f.Add("p edge x y\n")
	f.Add("p edge 999999999 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := readDIMACSLimit(strings.NewReader(in), fuzzMaxVertices)
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted input built an invalid graph: %v\ninput: %q", verr, in)
		}
	})
}

// FuzzWireCSR drives the binary CSR decoder with arbitrary frames through
// the small-cap variant. Invariants: never panic, never over-allocate past
// the cap, any accepted frame passes full structural validation, and the
// streaming fingerprint matches the canonical Graph.Fingerprint().
func FuzzWireCSR(f *testing.F) {
	// Valid frames as mutation seeds: empty graph, a triangle, a path with
	// isolated tail vertices.
	for _, text := range []string{"", "0 1\n1 2\n2 0\n", "# n 6\n0 1\n1 2\n"} {
		g, err := readEdgeListLimit(strings.NewReader(text), fuzzMaxVertices)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(EncodeWireCSR(g))
	}
	f.Add([]byte("GCSR"))                                                 // truncated header
	f.Add([]byte("GCSR\x01\x00\x00\x00\xff\xff\xff\xff\x00\x00\x00\x00")) // huge n, no body
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, frame []byte) {
		g, fp, err := decodeWireCSRLimit(frame, fuzzMaxVertices)
		if err != nil {
			return
		}
		if g.NumVertices() > fuzzMaxVertices {
			t.Fatalf("vertex count %d exceeds the cap", g.NumVertices())
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted frame built an invalid graph: %v", verr)
		}
		if want := g.Fingerprint(); fp != want {
			t.Fatalf("streaming fingerprint %016x != canonical %016x", fp, want)
		}
	})
}

func FuzzMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 2\n2 3\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n-5 -5 1\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 3 1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := readMatrixMarketLimit(strings.NewReader(in), fuzzMaxVertices)
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted input built an invalid graph: %v\ninput: %q", verr, in)
		}
	})
}
