package graph

import (
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

func mustEdgeList(t *testing.T, s string) *Graph {
	t.Helper()
	g, err := ReadEdgeList(strings.NewReader(s))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	return g
}

func randomGraph(t *testing.T, n, m int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int32, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
	}
	return FromEdges(n, edges)
}

func sameGraph(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() {
		return false
	}
	for i, o := range a.Offsets() {
		if b.Offsets()[i] != o {
			return false
		}
	}
	for i, x := range a.Adj() {
		if b.Adj()[i] != x {
			return false
		}
	}
	return true
}

func TestWireCSRRoundTrip(t *testing.T) {
	graphs := []*Graph{
		{}, // empty
		mustEdgeList(t, "0 1\n1 2\n2 0\n"),
		mustEdgeList(t, "# n 7\n0 1\n"), // trailing isolated vertices
		randomGraph(t, 50, 200, 1),
		randomGraph(t, 1000, 4000, 2),
	}
	for i, g := range graphs {
		frame := EncodeWireCSR(g)
		if len(frame) != WireCSRSize(g) {
			t.Fatalf("graph %d: frame is %d bytes, WireCSRSize says %d", i, len(frame), WireCSRSize(g))
		}
		dec, fp, err := DecodeWireCSR(frame)
		if err != nil {
			t.Fatalf("graph %d: decode: %v", i, err)
		}
		if !sameGraph(g, dec) {
			t.Fatalf("graph %d: round trip changed the graph: %v -> %v", i, g, dec)
		}
		if want := dec.Fingerprint(); fp != want {
			t.Fatalf("graph %d: streaming fingerprint %016x != Fingerprint() %016x", i, fp, want)
		}
		if verr := dec.Validate(); verr != nil {
			t.Fatalf("graph %d: decoded graph invalid: %v", i, verr)
		}
	}
}

// TestFingerprintStableAcrossWireFormats is the cross-client cache contract:
// the same graph uploaded as edge-list text (the JSON path) and as a binary
// CSR frame must hash to byte-identical fingerprints, and those values must
// never drift across releases (golden constants). A silent change here would
// split the result cache and break idempotency between mixed-version
// clients.
func TestFingerprintStableAcrossWireFormats(t *testing.T) {
	cases := []struct {
		name   string
		text   string
		golden string
	}{
		{"triangle", "0 1\n1 2\n2 0\n", "b5183eea205acf56"},
		{"path4", "# n 4\n0 1\n1 2\n2 3\n", "db595135de0c0d83"},
		{"star5", "# n 5\n0 1\n0 2\n0 3\n0 4\n", "846d14bf4b606fec"},
		{"isolated", "# n 3\n0 1\n", "7e57967e13bcee56"},
	}
	for _, tc := range cases {
		g := mustEdgeList(t, tc.text)
		textFP := g.Fingerprint()
		_, wireFP, err := DecodeWireCSR(EncodeWireCSR(g))
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if textFP != wireFP {
			t.Errorf("%s: text fingerprint %016x != wire fingerprint %016x", tc.name, textFP, wireFP)
		}
		if got := FingerprintString(textFP); got != tc.golden {
			t.Errorf("%s: fingerprint %s, golden %s (cache keys across releases depend on this)", tc.name, got, tc.golden)
		}
	}
	// Property form on a larger graph: edge order and direction must not
	// matter either.
	g1 := mustEdgeList(t, "0 1\n1 2\n2 3\n3 0\n0 2\n")
	g2 := mustEdgeList(t, "2 0\n0 3\n3 2\n2 1\n1 0\n")
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Errorf("same edge set, different fingerprints: %016x vs %016x", g1.Fingerprint(), g2.Fingerprint())
	}
}

// corrupt builds a syntactically well-formed frame for a small valid graph
// and lets the caller damage it.
func corruptFrame(t *testing.T, mutate func([]byte) []byte) []byte {
	t.Helper()
	g := mustEdgeList(t, "0 1\n1 2\n2 0\n0 3\n")
	return mutate(EncodeWireCSR(g))
}

func TestWireCSRRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 9; return b }},
		{"nonzero flags", func(b []byte) []byte { b[6] = 1; return b }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-3] }},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0xAA) }},
		{"length past EOF", func(b []byte) []byte {
			// Declare more arcs than the frame carries.
			binary.LittleEndian.PutUint32(b[12:16], binary.LittleEndian.Uint32(b[12:16])+4)
			return b
		}},
		{"row_ptr[0] nonzero", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:20], 1)
			return b
		}},
		{"row_ptr not monotone", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[20:24], 0xFFFFFFFF) // -1 as int32
			return b
		}},
		{"row_ptr[n] mismatch", func(b []byte) []byte {
			n := binary.LittleEndian.Uint32(b[8:12])
			last := 16 + 4*n
			binary.LittleEndian.PutUint32(b[last:last+4], binary.LittleEndian.Uint32(b[last:last+4])-1)
			return b
		}},
		{"col out of range", func(b []byte) []byte {
			n := binary.LittleEndian.Uint32(b[8:12])
			cols := 16 + 4*(n+1)
			binary.LittleEndian.PutUint32(b[cols:cols+4], n+5)
			return b
		}},
		{"self loop", func(b []byte) []byte {
			n := binary.LittleEndian.Uint32(b[8:12])
			cols := 16 + 4*(n+1)
			binary.LittleEndian.PutUint32(b[cols:cols+4], 0) // first arc is 0->x; make it 0->0
			return b
		}},
		{"duplicate neighbour", func(b []byte) []byte {
			// Vertex 0 of the test graph has neighbours 1, 3; make them 1, 1.
			n := binary.LittleEndian.Uint32(b[8:12])
			cols := 16 + 4*(n+1)
			binary.LittleEndian.PutUint32(b[cols+4:cols+8], binary.LittleEndian.Uint32(b[cols:cols+4]))
			return b
		}},
		{"oversized vertex count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 0xFFFFFFF0)
			return b
		}},
	}
	for _, tc := range cases {
		frame := corruptFrame(t, tc.mutate)
		if g, _, err := DecodeWireCSR(frame); err == nil {
			t.Errorf("%s: decoder accepted a corrupt frame (got %v)", tc.name, g)
		}
	}
	// Asymmetric frame, built by hand: arc 0->1 with no reverse.
	var b []byte
	b = append(b, WireCSRMagic...)
	b = binary.LittleEndian.AppendUint16(b, WireCSRVersion)
	b = binary.LittleEndian.AppendUint16(b, 0)
	b = binary.LittleEndian.AppendUint32(b, 2) // n
	b = binary.LittleEndian.AppendUint32(b, 1) // m
	for _, o := range []uint32{0, 1, 1} {
		b = binary.LittleEndian.AppendUint32(b, o)
	}
	b = binary.LittleEndian.AppendUint32(b, 1) // 0->1, no 1->0
	if _, _, err := DecodeWireCSR(b); err == nil {
		t.Errorf("asymmetric: decoder accepted an arc with no reverse")
	}
}

func TestConcatDisjoint(t *testing.T) {
	a := mustEdgeList(t, "0 1\n1 2\n2 0\n")             // triangle, n=3
	b := mustEdgeList(t, "# n 5\n0 1\n1 2\n2 3\n3 4\n") // path, n=5
	c := mustEdgeList(t, "# n 2\n")                     // two isolated vertices
	u, starts := ConcatDisjoint(a, b, c)

	wantStarts := []int32{0, 3, 8, 10}
	if len(starts) != len(wantStarts) {
		t.Fatalf("starts = %v, want %v", starts, wantStarts)
	}
	for i, s := range wantStarts {
		if starts[i] != s {
			t.Fatalf("starts = %v, want %v", starts, wantStarts)
		}
	}
	if u.NumVertices() != 10 || u.NumArcs() != a.NumArcs()+b.NumArcs()+c.NumArcs() {
		t.Fatalf("union has n=%d m=%d", u.NumVertices(), u.NumArcs())
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("union fails validation: %v", err)
	}
	// Each member's adjacency must reappear shifted by its start.
	for mi, g := range []*Graph{a, b, c} {
		base := starts[mi]
		for v := 0; v < g.NumVertices(); v++ {
			got := u.Neighbors(base + int32(v))
			want := g.Neighbors(int32(v))
			if len(got) != len(want) {
				t.Fatalf("member %d vertex %d: degree %d, want %d", mi, v, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i]+base {
					t.Fatalf("member %d vertex %d: neighbour %d, want %d", mi, v, got[i], want[i]+base)
				}
			}
		}
	}
	// No cross-member arcs: Validate plus the shifted-adjacency check above
	// already imply it, but assert the block structure explicitly.
	for v := int32(0); int(v) < u.NumVertices(); v++ {
		mi := 0
		for starts[mi+1] <= v {
			mi++
		}
		for _, w := range u.Neighbors(v) {
			if w < starts[mi] || w >= starts[mi+1] {
				t.Fatalf("arc %d->%d crosses member boundary", v, w)
			}
		}
	}
	// Union of one graph is the graph itself (same fingerprint).
	solo, st := ConcatDisjoint(a)
	if !sameGraph(solo, a) || st[0] != 0 || st[1] != int32(a.NumVertices()) {
		t.Fatalf("singleton union changed the graph")
	}
	if solo.Fingerprint() != a.Fingerprint() {
		t.Fatalf("singleton union changed the fingerprint")
	}
}

func TestFromEdgesMatchesBuilder(t *testing.T) {
	// FromEdges builds CSR directly; it must agree with the incremental
	// Builder on arbitrary messy input (duplicates, both directions, self
	// loops, isolated vertices).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(60)
		m := rng.Intn(200)
		edges := make([][2]int32, 0, m)
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			edges = append(edges, [2]int32{u, v})
			b.AddEdge(u, v)
			if rng.Intn(3) == 0 { // sprinkle duplicates in the other direction
				edges = append(edges, [2]int32{v, u})
				b.AddEdge(v, u)
			}
		}
		direct := FromEdges(n, edges)
		built := b.Build()
		if !sameGraph(direct, built) {
			t.Fatalf("trial %d: FromEdges and Builder disagree: %v vs %v", trial, direct, built)
		}
		if err := direct.Validate(); err != nil {
			t.Fatalf("trial %d: FromEdges built an invalid graph: %v", trial, err)
		}
	}
}
