package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderGrow(t *testing.T) {
	b := NewBuilder(2)
	b.Grow(5)
	b.AddEdge(0, 4)
	g := b.Build()
	if g.NumVertices() != 5 {
		t.Errorf("NumVertices = %d, want 5", g.NumVertices())
	}
	b.Grow(3) // shrink attempts are no-ops
	if b.NumVertices() != 5 {
		t.Errorf("Grow shrank builder to %d", b.NumVertices())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(3).AddEdge(0, 3)
}

func TestNewBuilderPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBuilder(-1) did not panic")
		}
	}()
	NewBuilder(-1)
}

func TestBuilderReuse(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g1 := b.Build()
	b.AddEdge(1, 2)
	g2 := b.Build()
	if g1.NumEdges() != 1 {
		t.Errorf("first build mutated by later AddEdge: %d edges", g1.NumEdges())
	}
	if g2.NumEdges() != 2 {
		t.Errorf("second build has %d edges, want 2", g2.NumEdges())
	}
}

func TestRelabelIdentity(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	perm := []int32{0, 1, 2, 3}
	r, err := Relabel(g, perm)
	if err != nil {
		t.Fatalf("Relabel: %v", err)
	}
	if r.NumEdges() != g.NumEdges() {
		t.Errorf("identity relabel changed edge count")
	}
	for v := int32(0); v < 3; v++ {
		if !r.HasEdge(v, v+1) {
			t.Errorf("edge %d-%d lost", v, v+1)
		}
	}
}

func TestRelabelReverse(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {2, 3}})
	perm := []int32{3, 2, 1, 0}
	r, err := Relabel(g, perm)
	if err != nil {
		t.Fatalf("Relabel: %v", err)
	}
	if !r.HasEdge(3, 2) || !r.HasEdge(1, 0) {
		t.Error("reversed edges missing after relabel")
	}
	if r.HasEdge(0, 1) && !g.HasEdge(2, 3) {
		t.Error("unexpected edge")
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}})
	if _, err := Relabel(g, []int32{0, 1}); err == nil {
		t.Error("short perm accepted")
	}
	if _, err := Relabel(g, []int32{0, 0, 1}); err == nil {
		t.Error("non-bijective perm accepted")
	}
	if _, err := Relabel(g, []int32{0, 1, 3}); err == nil {
		t.Error("out-of-range perm accepted")
	}
}

func TestDegreeOrder(t *testing.T) {
	// Vertex 2 has the highest degree in the test graph; it must map to 0.
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	perm := DegreeOrder(g)
	if perm[2] != 0 {
		t.Errorf("highest-degree vertex mapped to %d, want 0", perm[2])
	}
	if perm[3] != 3 {
		t.Errorf("lowest-degree vertex mapped to %d, want 3", perm[3])
	}
	r, err := Relabel(g, perm)
	if err != nil {
		t.Fatalf("Relabel: %v", err)
	}
	// Degrees must now be non-increasing.
	for v := 0; v+1 < r.NumVertices(); v++ {
		if r.Degree(int32(v)) < r.Degree(int32(v+1)) {
			t.Errorf("degrees not sorted: deg(%d)=%d < deg(%d)=%d",
				v, r.Degree(int32(v)), v+1, r.Degree(int32(v+1)))
		}
	}
}

// Property: relabelling preserves the degree multiset and edge count, and
// relabelling by the inverse permutation restores the original graph.
func TestRelabelRoundTripProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%40 + 2
		rng := rand.New(rand.NewSource(seed))
		g := FromEdges(n, randomEdges(rng, n, 3*n))
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		r, err := Relabel(g, perm)
		if err != nil {
			return false
		}
		if r.NumEdges() != g.NumEdges() {
			return false
		}
		inv := make([]int32, n)
		for old, nw := range perm {
			inv[nw] = int32(old)
		}
		back, err := Relabel(r, inv)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if back.Degree(int32(v)) != g.Degree(int32(v)) {
				return false
			}
			nbr, orig := back.Neighbors(int32(v)), g.Neighbors(int32(v))
			for i := range orig {
				if nbr[i] != orig[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
