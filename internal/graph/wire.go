// Binary CSR wire format for the serving hot path.
//
// The text formats in io.go are convenient but expensive: every upload pays
// tokenizing, integer parsing, and a builder pass that materializes the
// adjacency twice. The wire format below carries the CSR arrays themselves,
// so ingest is a bounds-checked copy: one little-endian frame, one
// allocation for the combined offset/adjacency storage, and the content
// fingerprint computed streaming during the same pass (no second walk for
// cache/idempotency keys).
//
// Frame layout (all fields little-endian):
//
//	offset  size      field
//	0       4         magic "GCSR"
//	4       2         version (currently 1)
//	6       2         flags (must be zero in version 1)
//	8       4         numVertices n (uint32)
//	12      4         numArcs m (uint32; directed arcs, i.e. 2x edges)
//	16      4*(n+1)   row_ptr (int32): arc range of v is row_ptr[v]:row_ptr[v+1]
//	...     4*m       col_idx (int32): sorted, deduplicated neighbour ids
//
// The frame is self-delimiting — its exact length is determined by the two
// counts — and the decoder rejects trailing bytes, so frames can be
// concatenated on a stream transport with no extra framing.
package graph

import (
	"encoding/binary"
	"fmt"
)

// Wire-format constants. WireCSRMagic leads every frame; a decoder can sniff
// the first four bytes to distinguish a binary frame from text formats.
const (
	WireCSRMagic   = "GCSR"
	WireCSRVersion = 1

	wireCSRHeaderLen = 16
)

// WireCSRSize returns the encoded frame size for g in bytes.
func WireCSRSize(g *Graph) int {
	return wireCSRHeaderLen + 4*(g.NumVertices()+1) + 4*g.NumArcs()
}

// AppendWireCSR appends the binary CSR frame for g to dst and returns the
// extended slice. Encoding never fails: any Graph holds the invariants the
// decoder checks.
func AppendWireCSR(dst []byte, g *Graph) []byte {
	n := g.NumVertices()
	m := g.NumArcs()
	need := WireCSRSize(g)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, WireCSRMagic...)
	dst = binary.LittleEndian.AppendUint16(dst, WireCSRVersion)
	dst = binary.LittleEndian.AppendUint16(dst, 0) // flags
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m))
	// The zero-value Graph has a nil offsets array; on the wire it is the
	// canonical empty graph with the single row_ptr entry 0.
	if len(g.offsets) == 0 {
		dst = binary.LittleEndian.AppendUint32(dst, 0)
	}
	for _, o := range g.offsets {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(o))
	}
	for _, a := range g.adj {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(a))
	}
	return dst
}

// EncodeWireCSR returns the binary CSR frame for g.
func EncodeWireCSR(g *Graph) []byte {
	return AppendWireCSR(make([]byte, 0, WireCSRSize(g)), g)
}

// DecodeWireCSR parses a binary CSR frame, fully validating the structural
// invariants (see decodeWireCSRLimit), and returns the graph together with
// its content fingerprint. The fingerprint is computed streaming during the
// decode pass and is bit-identical to Graph.Fingerprint(), so callers on the
// ingest path never need a second hashing walk.
func DecodeWireCSR(data []byte) (*Graph, uint64, error) {
	return decodeWireCSRLimit(data, MaxVertices)
}

// decodeWireCSRLimit is DecodeWireCSR with an explicit vertex cap (the fuzz
// target uses a small one so hostile counts cannot OOM the harness).
//
// Validation is the full Validate() contract — monotone row_ptr bracketing
// col_idx, neighbour ids in range and strictly increasing (sorted, no
// duplicates, no self loops), and arc symmetry — because a frame crosses a
// trust boundary: it arrives from the network, and an accepted graph flows
// straight into kernels that index with its offsets.
func decodeWireCSRLimit(data []byte, maxN int) (*Graph, uint64, error) {
	if len(data) < wireCSRHeaderLen {
		return nil, 0, fmt.Errorf("gcsr: truncated header: %d bytes, want at least %d", len(data), wireCSRHeaderLen)
	}
	if string(data[:4]) != WireCSRMagic {
		return nil, 0, fmt.Errorf("gcsr: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != WireCSRVersion {
		return nil, 0, fmt.Errorf("gcsr: unsupported version %d", v)
	}
	if fl := binary.LittleEndian.Uint16(data[6:8]); fl != 0 {
		return nil, 0, fmt.Errorf("gcsr: unsupported flags %#x", fl)
	}
	n64 := int64(binary.LittleEndian.Uint32(data[8:12]))
	m64 := int64(binary.LittleEndian.Uint32(data[12:16]))
	if n64 > int64(maxN) {
		return nil, 0, fmt.Errorf("gcsr: vertex count %d exceeds limit %d", n64, maxN)
	}
	// Arcs are bounded by the frame itself (4 bytes each), but check against
	// int32 explicitly: offsets must be representable.
	if m64 > int64(1<<31-1)-1 {
		return nil, 0, fmt.Errorf("gcsr: arc count %d exceeds int32 range", m64)
	}
	want := int64(wireCSRHeaderLen) + 4*(n64+1) + 4*m64
	if int64(len(data)) < want {
		return nil, 0, fmt.Errorf("gcsr: frame is %d bytes, header declares %d", len(data), want)
	}
	if int64(len(data)) > want {
		return nil, 0, fmt.Errorf("gcsr: %d trailing bytes past declared frame end", int64(len(data))-want)
	}
	n := int(n64)
	m := int(m64)

	// Single backing allocation for both CSR arrays; the two views stay
	// alive together for the graph's lifetime anyway.
	buf := make([]int32, n+1+m)
	offsets := buf[: n+1 : n+1]
	adj := buf[n+1:]

	fp := uint64(fnvOffset64)
	fp = fnvInt32(fp, int32(n))

	body := data[wireCSRHeaderLen:]
	prev := int32(0)
	for i := 0; i <= n; i++ {
		o := int32(binary.LittleEndian.Uint32(body[4*i:]))
		if i == 0 && o != 0 {
			return nil, 0, fmt.Errorf("gcsr: row_ptr[0] = %d, want 0", o)
		}
		if o < prev {
			return nil, 0, fmt.Errorf("gcsr: row_ptr not monotone at index %d (%d < %d)", i, o, prev)
		}
		offsets[i] = o
		prev = o
		fp = fnvInt32(fp, o)
	}
	if int(offsets[n]) != m {
		return nil, 0, fmt.Errorf("gcsr: row_ptr[n] = %d, want arc count %d", offsets[n], m)
	}
	cols := body[4*(n+1):]
	v := 0
	last := int32(-1)
	for i := 0; i < m; i++ {
		for int(offsets[v+1]) <= i {
			v++
			last = -1
		}
		a := int32(binary.LittleEndian.Uint32(cols[4*i:]))
		if a < 0 || int(a) >= n {
			return nil, 0, fmt.Errorf("gcsr: vertex %d has out-of-range neighbour %d", v, a)
		}
		if a == int32(v) {
			return nil, 0, fmt.Errorf("gcsr: self loop at vertex %d", v)
		}
		if a <= last {
			return nil, 0, fmt.Errorf("gcsr: adjacency of vertex %d not strictly sorted at arc %d", v, i)
		}
		adj[i] = a
		last = a
		fp = fnvInt32(fp, a)
	}
	g := &Graph{offsets: offsets, adj: adj}
	// Symmetry needs the full arrays, so it runs as a second pass; the
	// element-level invariants above already hold, making HasEdge safe.
	for u := 0; u < n; u++ {
		for _, w := range g.Neighbors(int32(u)) {
			if !g.HasEdge(w, int32(u)) {
				return nil, 0, fmt.Errorf("gcsr: arc %d->%d has no reverse", u, w)
			}
		}
	}
	return g, fp, nil
}

// ConcatDisjoint packs graphs into one block-diagonal CSR: member i's
// vertices are renumbered to start at starts[i], and no arcs cross members,
// so a coloring of the union restricted to starts[i]:starts[i+1] is exactly
// a coloring of member i. starts has len(gs)+1 entries (the last is the
// total vertex count), mirroring CSR offsets.
//
// The union is built directly — every invariant Validate() checks composes
// under disjoint union, so no re-validation pass is needed. Panics if the
// combined size overflows int32 (callers bound batch sizes far below that).
func ConcatDisjoint(gs ...*Graph) (*Graph, []int32) {
	var totalN, totalM int64
	for _, g := range gs {
		totalN += int64(g.NumVertices())
		totalM += int64(g.NumArcs())
	}
	if totalN+1 > 1<<31-1 || totalM > 1<<31-1 {
		panic(fmt.Sprintf("graph: disjoint union of %d vertices / %d arcs overflows int32", totalN, totalM))
	}
	offsets := make([]int32, totalN+1)
	adj := make([]int32, totalM)
	starts := make([]int32, len(gs)+1)
	vOff, aOff := int32(0), int32(0)
	for i, g := range gs {
		starts[i] = vOff
		n := g.NumVertices()
		for v := 0; v < n; v++ {
			offsets[int(vOff)+v] = aOff + g.offsets[v]
		}
		for j, a := range g.adj {
			adj[int(aOff)+j] = a + vOff
		}
		vOff += int32(n)
		aOff += int32(len(g.adj))
	}
	offsets[totalN] = aOff
	starts[len(gs)] = vOff
	return &Graph{offsets: offsets, adj: adj}, starts
}
