package graph

import (
	"testing"
)

// TestFromEdgesAllocs pins the direct CSR build's allocation count: one
// offsets array, one adjacency array, one Graph header — no arc buffer, no
// cursor array, no second adjacency materialization, no per-row sort
// closures. This is the ingest half of the serving hot path (every inline
// edge-list upload lands here through ReadEdgeList).
func TestFromEdgesAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budget only holds without it")
	}
	// A messy input on purpose: duplicates, both directions, self loops.
	edges := make([][2]int32, 0, 4000)
	for i := int32(0); i < 1000; i++ {
		u, v := i%97, (i*31+7)%89
		edges = append(edges, [2]int32{u, v}, [2]int32{v, u}, [2]int32{u, u})
	}
	allocs := testing.AllocsPerRun(20, func() {
		FromEdges(100, edges)
	})
	if allocs > 3 {
		t.Fatalf("FromEdges allocates %.0f objects, want at most 3 (offsets, adj, header)", allocs)
	}
}

// TestWireCSRDecodeAllocs pins the binary frame decoder's allocation
// count: a single backing array shared by offsets and adjacency, plus the
// Graph header. This is what makes the binary ingest path allocate a
// fraction of the text path's per-line costs (see serve's ingest budget
// test for the end-to-end ratio).
func TestWireCSRDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budget only holds without it")
	}
	g := FromEdges(200, func() [][2]int32 {
		var es [][2]int32
		for i := int32(0); i < 199; i++ {
			es = append(es, [2]int32{i, i + 1})
		}
		return es
	}())
	frame := EncodeWireCSR(g)
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := DecodeWireCSR(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("DecodeWireCSR allocates %.0f objects, want at most 2 (backing array, header)", allocs)
	}
}
