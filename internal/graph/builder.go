package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Builder accumulates undirected edges and produces a simple Graph in CSR
// form. It deduplicates edges, drops self loops, and symmetrizes, so callers
// may add each edge once in either direction (or both; duplicates are free).
//
// Panic policy: NewBuilder and AddEdge panic on a negative vertex count or
// an out-of-range endpoint. Those are caller bugs — every code path that
// handles external input (the io.go parsers, cmd flags) range-checks before
// calling, and returns an error instead. Keeping the library precondition a
// panic makes a missing validation step loud rather than silently clamped.
//
// Builder is not safe for concurrent use.
type Builder struct {
	n     int
	edges []arc // directed arcs, both directions added per edge
}

type arc struct{ u, v int32 }

// NewBuilder returns a builder for a graph with n vertices (ids 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Builder{n: n}
}

// NumVertices returns the vertex count the builder was created with.
func (b *Builder) NumVertices() int { return b.n }

// AddEdge records the undirected edge {u, v}. Self loops are dropped
// silently; out-of-range endpoints panic (they indicate a caller bug).
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.edges = append(b.edges, arc{u, v}, arc{v, u})
}

// Grow raises the vertex count to at least n (no-op if already larger).
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// Build produces the CSR graph. The builder may be reused afterwards; built
// graphs do not alias builder storage.
func (b *Builder) Build() *Graph {
	// Counting sort by source vertex, then sort+dedup each adjacency range.
	offsets := make([]int32, b.n+1)
	for _, e := range b.edges {
		offsets[e.u+1]++
	}
	for v := 0; v < b.n; v++ {
		offsets[v+1] += offsets[v]
	}
	adj := make([]int32, len(b.edges))
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range b.edges {
		adj[cursor[e.u]] = e.v
		cursor[e.u]++
	}
	// Sort and dedup each range, compacting in place.
	out := adj[:0]
	newOffsets := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		rng := adj[lo:hi]
		slices.Sort(rng)
		newOffsets[v] = int32(len(out))
		var prev int32 = -1
		for _, u := range rng {
			if u != prev {
				out = append(out, u)
				prev = u
			}
		}
	}
	newOffsets[b.n] = int32(len(out))
	compact := make([]int32, len(out))
	copy(compact, out)
	return &Graph{offsets: newOffsets, adj: compact}
}

// FromEdges builds a graph with n vertices from an undirected edge list.
// Edges may appear in any order and direction; duplicates and self loops are
// ignored.
//
// Unlike the incremental Builder (which buffers arcs and materializes the
// adjacency twice), FromEdges builds the CSR directly from the pair slice:
// degree count, prefix sum, scatter, then an in-place sort+dedup compaction.
// It allocates exactly one offsets array and one adjacency array, which is
// what keeps the JSON/edge-list ingest path cheap (see hotpath_test.go).
func FromEdges(n int, edges [][2]int32) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	offsets := make([]int32, n+1)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, n))
		}
		if u == v {
			continue
		}
		offsets[u+1]++
		offsets[v+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	adj := make([]int32, offsets[n])
	// Scatter using offsets[v] itself as the write cursor; afterwards every
	// offsets[v] has advanced to the old offsets[v+1], so shift the array
	// back one slot instead of allocating a separate cursor array.
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		adj[offsets[u]] = v
		offsets[u]++
		adj[offsets[v]] = u
		offsets[v]++
	}
	for v := n; v > 0; v-- {
		offsets[v] = offsets[v-1]
	}
	offsets[0] = 0
	// Sort each range and dedup, compacting in place (write position never
	// passes the read position, so no second adjacency materialization).
	w := int32(0)
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		rng := adj[lo:hi]
		slices.Sort(rng)
		offsets[v] = w
		var prev int32 = -1
		for _, u := range rng {
			if u != prev {
				adj[w] = u
				w++
				prev = u
			}
		}
	}
	offsets[n] = w
	return &Graph{offsets: offsets, adj: adj[:w]}
}

// Relabel returns a copy of g with vertices renamed by perm: new id of
// vertex v is perm[v]. perm must be a permutation of 0..n-1; Relabel returns
// an error otherwise. Relabelling changes which vertices share wavefronts
// and workgroup chunks on the simulated GPU, which is how the experiments
// probe sensitivity to hub placement.
func Relabel(g *Graph, perm []int32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: perm length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: perm is not a permutation (value %d)", p)
		}
		seen[p] = true
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if int32(v) < u { // each undirected edge once
				b.AddEdge(perm[v], perm[u])
			}
		}
	}
	return b.Build(), nil
}

// DegreeOrder returns a permutation that relabels vertices by descending
// degree (ties by original id), i.e. perm[v] is the new id of v.
func DegreeOrder(g *Graph) []int32 {
	n := g.NumVertices()
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.SliceStable(ids, func(i, j int) bool {
		return g.Degree(ids[i]) > g.Degree(ids[j])
	})
	perm := make([]int32, n)
	for newID, old := range ids {
		perm[old] = int32(newID)
	}
	return perm
}
