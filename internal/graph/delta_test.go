package graph

import (
	"math/rand"
	"slices"
	"testing"
)

// rebuildEdges reconstructs the undirected edge set of g as a map keyed by
// canonical (min,max) pairs — the oracle the delta merge is checked against.
func rebuildEdges(g *Graph) map[[2]int32]bool {
	set := map[[2]int32]bool{}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				set[[2]int32{v, u}] = true
			}
		}
	}
	return set
}

func applyOracle(set map[[2]int32]bool, d *Delta) map[[2]int32]bool {
	out := map[[2]int32]bool{}
	for e := range set {
		out[e] = true
	}
	canon := func(e [2]int32) [2]int32 {
		if e[0] > e[1] {
			return [2]int32{e[1], e[0]}
		}
		return e
	}
	for _, e := range d.RemoveEdges {
		delete(out, canon(e))
	}
	for _, e := range d.AddEdges {
		out[canon(e)] = true
	}
	return out
}

func TestApplyDeltaMatchesRebuild(t *testing.T) {
	base := FromEdges(8, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}})
	d := &Delta{
		AddVertices: 2,
		AddEdges:    [][2]int32{{6, 7}, {8, 0}, {8, 9}, {1, 2} /* present: no-op */, {3, 0}},
		RemoveEdges: [][2]int32{{2, 3}, {4, 5}, {0, 6} /* absent: no-op */},
	}
	ng, fp, frontier, err := ApplyDelta(base, d)
	if err != nil {
		t.Fatal(err)
	}
	want := applyOracle(rebuildEdges(base), d)
	var edges [][2]int32
	for e := range want {
		edges = append(edges, e)
	}
	ref := FromEdges(10, edges)
	if ng.NumVertices() != ref.NumVertices() || ng.NumArcs() != ref.NumArcs() {
		t.Fatalf("successor %d vertices / %d arcs, want %d / %d",
			ng.NumVertices(), ng.NumArcs(), ref.NumVertices(), ref.NumArcs())
	}
	if got := rebuildEdges(ng); len(got) != len(want) {
		t.Fatalf("successor has %d edges, want %d", len(got), len(want))
	} else {
		for e := range want {
			if !got[e] {
				t.Fatalf("successor missing edge %v", e)
			}
		}
	}
	if err := ng.Validate(); err != nil {
		t.Fatalf("successor CSR invalid: %v", err)
	}
	if fp != ng.Fingerprint() {
		t.Errorf("streaming fp %016x != content fp %016x", fp, ng.Fingerprint())
	}
	if fp != ref.Fingerprint() {
		t.Errorf("delta-produced fp %016x != from-scratch fp %016x (chain identity broken)", fp, ref.Fingerprint())
	}
	// Frontier: endpoints of effective ops + the new vertices, nothing else
	// changed — but at minimum it must cover every changed neighbourhood.
	wantFrontier := []int32{0, 2, 3, 4, 5, 6, 7, 8, 9}
	if !slices.Equal(frontier, wantFrontier) {
		t.Errorf("frontier %v, want %v", frontier, wantFrontier)
	}
}

func TestApplyDeltaNoOpsEmptyFrontier(t *testing.T) {
	base := FromEdges(5, [][2]int32{{0, 1}, {1, 2}})
	d := &Delta{
		AddEdges:    [][2]int32{{0, 1}},         // already present
		RemoveEdges: [][2]int32{{3, 4}, {2, 0}}, // absent
	}
	ng, fp, frontier, err := ApplyDelta(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) != 0 {
		t.Errorf("no-op delta produced frontier %v", frontier)
	}
	if fp != base.Fingerprint() {
		t.Errorf("no-op delta changed fingerprint")
	}
	if ng.NumArcs() != base.NumArcs() {
		t.Errorf("no-op delta changed arc count")
	}
}

func TestApplyDeltaRemoveThenAddKeepsEdge(t *testing.T) {
	base := FromEdges(3, [][2]int32{{0, 1}})
	d := &Delta{
		AddEdges:    [][2]int32{{0, 1}},
		RemoveEdges: [][2]int32{{1, 0}}, // reversed endpoint order on purpose
	}
	ng, _, frontier, err := ApplyDelta(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if !ng.HasEdge(0, 1) {
		t.Fatal("edge in both lists must survive (remove-then-add)")
	}
	if len(frontier) != 0 {
		t.Errorf("remove-then-add of a present edge is a no-op, frontier %v", frontier)
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	base := FromEdges(4, [][2]int32{{0, 1}})
	cases := []struct {
		name string
		d    Delta
	}{
		{"negative add vertices", Delta{AddVertices: -1}},
		{"add out of range", Delta{AddEdges: [][2]int32{{0, 4}}}},
		{"add negative endpoint", Delta{AddEdges: [][2]int32{{-1, 2}}}},
		{"add self loop", Delta{AddEdges: [][2]int32{{2, 2}}}},
		{"remove out of range", Delta{RemoveEdges: [][2]int32{{0, 9}}}},
		{"remove self loop", Delta{RemoveEdges: [][2]int32{{1, 1}}}},
	}
	for _, tc := range cases {
		if _, _, _, err := ApplyDelta(base, &tc.d); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// Edges may reference appended vertices.
	if _, _, _, err := ApplyDelta(base, &Delta{AddVertices: 1, AddEdges: [][2]int32{{0, 4}}}); err != nil {
		t.Errorf("edge to appended vertex rejected: %v", err)
	}
}

func TestApplyDeltaRandomizedAgainstRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 60; iter++ {
		n := 5 + rng.Intn(40)
		var edges [][2]int32
		for u := int32(0); int(u) < n; u++ {
			for v := u + 1; int(v) < n; v++ {
				if rng.Intn(4) == 0 {
					edges = append(edges, [2]int32{u, v})
				}
			}
		}
		base := FromEdges(n, edges)
		d := &Delta{AddVertices: rng.Intn(4)}
		newN := n + d.AddVertices
		pick := func() [2]int32 {
			u := rng.Int31n(int32(newN))
			v := rng.Int31n(int32(newN))
			for v == u {
				v = rng.Int31n(int32(newN))
			}
			return [2]int32{u, v}
		}
		for i := rng.Intn(10); i > 0; i-- {
			d.AddEdges = append(d.AddEdges, pick())
		}
		for i := rng.Intn(10); i > 0; i-- {
			d.RemoveEdges = append(d.RemoveEdges, pick())
		}
		ng, fp, frontier, err := ApplyDelta(base, d)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := ng.Validate(); err != nil {
			t.Fatalf("iter %d: invalid successor: %v", iter, err)
		}
		want := applyOracle(rebuildEdges(base), d)
		got := rebuildEdges(ng)
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d edges, want %d", iter, len(got), len(want))
		}
		for e := range want {
			if !got[e] {
				t.Fatalf("iter %d: missing edge %v", iter, e)
			}
		}
		if fp != ng.Fingerprint() {
			t.Fatalf("iter %d: streaming fp mismatch", iter)
		}
		// Frontier must cover every vertex whose neighbourhood changed.
		changed := map[int32]bool{}
		for v := int32(0); int(v) < n; v++ {
			if !slices.Equal(base.Neighbors(v), ng.Neighbors(v)) {
				changed[v] = true
			}
		}
		for v := n; v < newN; v++ {
			changed[int32(v)] = true
		}
		inF := map[int32]bool{}
		for _, v := range frontier {
			inF[v] = true
		}
		for v := range changed {
			if !inF[v] {
				t.Fatalf("iter %d: changed vertex %d not in frontier %v", iter, v, frontier)
			}
		}
		if !slices.IsSorted(frontier) {
			t.Fatalf("iter %d: frontier not sorted", iter)
		}
	}
}

func TestWireDeltaRoundTrip(t *testing.T) {
	d := &Delta{
		AddVertices: 3,
		AddEdges:    [][2]int32{{0, 1}, {7, 2}},
		RemoveEdges: [][2]int32{{5, 6}},
	}
	const baseFp uint64 = 0xdeadbeefcafef00d
	frame := EncodeWireDelta(baseFp, d)
	if len(frame) != WireDeltaSize(d) {
		t.Fatalf("frame is %d bytes, WireDeltaSize says %d", len(frame), WireDeltaSize(d))
	}
	if !IsWireDelta(frame) {
		t.Fatal("IsWireDelta rejects its own frame")
	}
	if string(frame[:4]) == WireCSRMagic {
		t.Fatal("delta frame sniffs as CSR")
	}
	gotFp, got, err := DecodeWireDelta(frame)
	if err != nil {
		t.Fatal(err)
	}
	if gotFp != baseFp {
		t.Errorf("base fp %016x, want %016x", gotFp, baseFp)
	}
	if got.AddVertices != d.AddVertices ||
		!slices.Equal(got.AddEdges, d.AddEdges) ||
		!slices.Equal(got.RemoveEdges, d.RemoveEdges) {
		t.Errorf("decoded %+v, want %+v", got, d)
	}
}

func TestWireDeltaDecodeErrors(t *testing.T) {
	good := EncodeWireDelta(1, &Delta{AddEdges: [][2]int32{{0, 1}}})
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", good[:10]},
		{"bad magic", append([]byte("NOPE"), good[4:]...)},
		{"truncated body", good[:len(good)-3]},
		{"trailing bytes", append(slices.Clone(good), 0)},
	}
	for _, tc := range cases {
		if _, _, err := DecodeWireDelta(tc.data); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// Version and flags bumps.
	bad := slices.Clone(good)
	bad[4] = 99
	if _, _, err := DecodeWireDelta(bad); err == nil {
		t.Error("future version accepted")
	}
	bad = slices.Clone(good)
	bad[6] = 1
	if _, _, err := DecodeWireDelta(bad); err == nil {
		t.Error("unknown flags accepted")
	}
}
