package graph

import (
	"math/rand"
	"testing"
)

// fpOf builds a graph from edges in the given order and fingerprints it.
func fpOf(n int, edges [][2]int32) uint64 {
	return FromEdges(n, edges).Fingerprint()
}

func TestFingerprintInsertionOrderInvariant(t *testing.T) {
	edges := [][2]int32{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {0, 4}, {1, 4}}
	want := fpOf(5, edges)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := make([][2]int32, len(edges))
		for i, j := range rng.Perm(len(edges)) {
			perm[i] = edges[j]
			if trial%2 == 1 {
				// Also flip endpoint order: {u,v} and {v,u} are the same
				// undirected edge.
				perm[i] = [2]int32{edges[j][1], edges[j][0]}
			}
		}
		if got := fpOf(5, perm); got != want {
			t.Fatalf("trial %d: fingerprint %016x != %016x under permuted insertion", trial, got, want)
		}
	}
}

func TestFingerprintDuplicateEdgesInvariant(t *testing.T) {
	base := [][2]int32{{0, 1}, {1, 2}, {2, 0}}
	withDups := [][2]int32{{0, 1}, {1, 2}, {1, 0}, {2, 0}, {2, 1}, {0, 1}}
	if a, b := fpOf(3, base), fpOf(3, withDups); a != b {
		t.Fatalf("duplicate insertions changed fingerprint: %016x != %016x", a, b)
	}
}

func TestFingerprintSingleEdgeMutation(t *testing.T) {
	base := [][2]int32{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}}
	fp := fpOf(5, base)
	// Removing any one edge must change the hash.
	for i := range base {
		mut := make([][2]int32, 0, len(base)-1)
		mut = append(mut, base[:i]...)
		mut = append(mut, base[i+1:]...)
		if got := fpOf(5, mut); got == fp {
			t.Errorf("removing edge %v left fingerprint unchanged (%016x)", base[i], fp)
		}
	}
	// Adding one edge must change the hash.
	if got := fpOf(5, append(append([][2]int32{}, base...), [2]int32{1, 3})); got == fp {
		t.Errorf("adding edge {1,3} left fingerprint unchanged (%016x)", fp)
	}
	// Rewiring one endpoint must change the hash.
	rewired := append([][2]int32{}, base...)
	rewired[4] = [2]int32{3, 0}
	if got := fpOf(5, rewired); got == fp {
		t.Errorf("rewiring edge left fingerprint unchanged (%016x)", fp)
	}
	// Same edge set on a larger vertex set (extra isolated vertex) differs.
	if got := fpOf(6, base); got == fp {
		t.Errorf("extra isolated vertex left fingerprint unchanged (%016x)", fp)
	}
}

// TestFingerprintGolden pins the hash function itself: these values must
// never change across runs, platforms, or releases, because result-cache
// keys and the /color API echo them. If this test fails, the hash changed —
// that is a breaking change to the serving protocol, not a test to update
// lightly.
func TestFingerprintGolden(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int32
		want  uint64
	}{
		{"empty", 0, nil, 0xa8c7f832281a39c5},
		{"one-vertex", 1, nil, 0x5f242d39c2422be4},
		{"single-edge", 2, [][2]int32{{0, 1}}, 0xb4973c4ebd4db845},
		{"triangle", 3, [][2]int32{{0, 1}, {1, 2}, {2, 0}}, 0xb5183eea205acf56},
		{"path4", 4, [][2]int32{{0, 1}, {1, 2}, {2, 3}}, 0xdb595135de0c0d83},
	}
	for _, c := range cases {
		if got := fpOf(c.n, c.edges); got != c.want {
			t.Errorf("%s: Fingerprint() = %#016x, want %#016x", c.name, got, c.want)
		}
	}
	if got, want := FingerprintString(0xb4973c4ebd4db845), "b4973c4ebd4db845"; got != want {
		t.Errorf("FingerprintString = %q, want %q", got, want)
	}
}

func TestFingerprintStableAcrossRecomputation(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	first := g.Fingerprint()
	for i := 0; i < 5; i++ {
		if got := g.Fingerprint(); got != first {
			t.Fatalf("recomputation %d: %016x != %016x", i, got, first)
		}
	}
	if got := g.Clone().Fingerprint(); got != first {
		t.Fatalf("clone fingerprint %016x != %016x", got, first)
	}
}
