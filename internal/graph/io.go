package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the three text formats the tools accept:
//
//   - edge list: one "u v" pair per line, 0-based, '#' or '%' comments;
//     the vertex count is max id + 1 unless a leading "# n <count>" line
//     raises it.
//   - DIMACS coloring format (.col): "c" comments, one "p edge <n> <m>"
//     problem line, "e <u> <v>" edges, 1-based.
//   - MatrixMarket coordinate pattern (.mtx): "%%MatrixMarket matrix
//     coordinate pattern <symmetry>" header, "<rows> <cols> <nnz>" size
//     line, 1-based "i j" entries. The matrix is treated as the adjacency
//     structure of an undirected graph (general matrices are symmetrized).

// MaxVertices caps the vertex count the text parsers accept. The CSR
// offsets array alone costs 4 bytes per vertex, so a single malformed line
// like "0 2000000000" would otherwise commit gigabytes before any edge is
// read; real inputs at this repository's scale sit orders of magnitude
// below the cap.
const MaxVertices = 1 << 28

// ReadEdgeList parses the edge-list format from r.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return readEdgeListLimit(r, MaxVertices)
}

// readEdgeListLimit is ReadEdgeList with an explicit vertex-count cap (the
// fuzz targets use a small one so hostile inputs cannot OOM the harness).
func readEdgeListLimit(r io.Reader, maxN int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var edges [][2]int32
	declared := 0
	maxID := int32(-1)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			// Optional "# n <count>" directive.
			f := strings.Fields(strings.TrimLeft(text, "#% "))
			if len(f) == 2 && f[0] == "n" {
				n, err := strconv.Atoi(f[1])
				if err == nil && n > declared {
					if n > maxN {
						return nil, fmt.Errorf("edgelist line %d: declared vertex count %d exceeds limit %d", line, n, maxN)
					}
					declared = n
				}
			}
			continue
		}
		f := strings.Fields(text)
		if len(f) < 2 {
			return nil, fmt.Errorf("edgelist line %d: want two fields, got %q", line, text)
		}
		u, err := strconv.ParseInt(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edgelist line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edgelist line %d: %v", line, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("edgelist line %d: negative vertex id", line)
		}
		if u >= int64(maxN) || v >= int64(maxN) {
			return nil, fmt.Errorf("edgelist line %d: vertex id %d exceeds limit %d", line, max(u, v), maxN)
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
		if int32(u) > maxID {
			maxID = int32(u)
		}
		if int32(v) > maxID {
			maxID = int32(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := int(maxID) + 1
	if declared > n {
		n = declared
	}
	return FromEdges(n, edges), nil
}

// WriteEdgeList writes g in the edge-list format (each undirected edge once,
// with a "# n" directive so isolated trailing vertices survive a round trip).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# n %d\n", g.NumVertices()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if int32(v) < u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadDIMACS parses the DIMACS graph-coloring (.col) format from r.
func ReadDIMACS(r io.Reader) (*Graph, error) {
	return readDIMACSLimit(r, MaxVertices)
}

func readDIMACSLimit(r io.Reader, maxN int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		f := strings.Fields(text)
		switch f[0] {
		case "p":
			if b != nil {
				return nil, fmt.Errorf("dimacs line %d: duplicate problem line", line)
			}
			if len(f) < 3 {
				return nil, fmt.Errorf("dimacs line %d: malformed problem line %q", line, text)
			}
			n, err := strconv.Atoi(f[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs line %d: bad vertex count %q", line, f[2])
			}
			if n > maxN {
				return nil, fmt.Errorf("dimacs line %d: vertex count %d exceeds limit %d", line, n, maxN)
			}
			b = NewBuilder(n)
		case "e":
			if b == nil {
				return nil, fmt.Errorf("dimacs line %d: edge before problem line", line)
			}
			if len(f) < 3 {
				return nil, fmt.Errorf("dimacs line %d: malformed edge %q", line, text)
			}
			u, err1 := strconv.Atoi(f[1])
			v, err2 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dimacs line %d: malformed edge %q", line, text)
			}
			if u < 1 || v < 1 || u > b.NumVertices() || v > b.NumVertices() {
				return nil, fmt.Errorf("dimacs line %d: edge (%d,%d) out of range 1..%d", line, u, v, b.NumVertices())
			}
			b.AddEdge(int32(u-1), int32(v-1))
		default:
			return nil, fmt.Errorf("dimacs line %d: unknown record %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("dimacs: missing problem line")
	}
	return b.Build(), nil
}

// WriteDIMACS writes g in the DIMACS .col format.
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if int32(v) < u {
				if _, err := fmt.Fprintf(bw, "e %d %d\n", v+1, u+1); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate-pattern matrix as an
// undirected graph. Square matrices only; the diagonal is dropped.
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	return readMatrixMarketLimit(r, MaxVertices)
}

func readMatrixMarketLimit(r io.Reader, maxN int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("mtx: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("mtx: unsupported header %q", sc.Text())
	}
	// header[3] is the field (pattern/real/integer); values, if present, are
	// ignored — only the sparsity structure matters for coloring.
	var b *Builder
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		f := strings.Fields(text)
		if b == nil { // size line
			if len(f) < 3 {
				return nil, fmt.Errorf("mtx line %d: malformed size line %q", line, text)
			}
			rows, err1 := strconv.Atoi(f[0])
			cols, err2 := strconv.Atoi(f[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("mtx line %d: malformed size line %q", line, text)
			}
			if rows < 0 || cols < 0 {
				return nil, fmt.Errorf("mtx line %d: negative dimension in %q", line, text)
			}
			if rows != cols {
				return nil, fmt.Errorf("mtx: matrix is %dx%d, want square", rows, cols)
			}
			if rows > maxN {
				return nil, fmt.Errorf("mtx line %d: dimension %d exceeds limit %d", line, rows, maxN)
			}
			b = NewBuilder(rows)
			continue
		}
		if len(f) < 2 {
			return nil, fmt.Errorf("mtx line %d: malformed entry %q", line, text)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("mtx line %d: malformed entry %q", line, text)
		}
		if i < 1 || j < 1 || i > b.NumVertices() || j > b.NumVertices() {
			return nil, fmt.Errorf("mtx line %d: entry (%d,%d) out of range", line, i, j)
		}
		if i != j {
			b.AddEdge(int32(i-1), int32(j-1))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("mtx: missing size line")
	}
	return b.Build(), nil
}
