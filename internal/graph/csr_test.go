package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// triangle plus a pendant: 0-1, 1-2, 2-0, 2-3
func testGraph(t *testing.T) *Graph {
	t.Helper()
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumArcs() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph reports n=%d arcs=%d edges=%d", g.NumVertices(), g.NumArcs(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate(empty) = %v", err)
	}
	if g.MaxDegree() != 0 || g.AvgDegree() != 0 {
		t.Errorf("empty graph degree stats nonzero")
	}
	st := g.Stats()
	if st.Mean != 0 || st.Max != 0 {
		t.Errorf("empty graph Stats = %+v", st)
	}
}

func TestBasicCounts(t *testing.T) {
	g := testGraph(t)
	if got := g.NumVertices(); got != 4 {
		t.Errorf("NumVertices = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Errorf("NumEdges = %d, want 4", got)
	}
	if got := g.NumArcs(); got != 8 {
		t.Errorf("NumArcs = %d, want 8", got)
	}
	wantDeg := []int{2, 2, 3, 1}
	for v, want := range wantDeg {
		if got := g.Degree(int32(v)); got != want {
			t.Errorf("Degree(%d) = %d, want %d", v, got, want)
		}
	}
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
	if got := g.AvgDegree(); got != 2 {
		t.Errorf("AvgDegree = %v, want 2", got)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := testGraph(t)
	nbr := g.Neighbors(2)
	want := []int32{0, 1, 3}
	if len(nbr) != len(want) {
		t.Fatalf("Neighbors(2) = %v, want %v", nbr, want)
	}
	for i := range want {
		if nbr[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", nbr, want)
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		u, v int32
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {2, 3, true}, {3, 2, true},
		{0, 3, false}, {3, 0, false}, {1, 3, false}, {0, 0, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestSelfLoopsAndDuplicatesDropped(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}, {1, 0}, {0, 1}, {1, 1}, {2, 2}})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Errorf("Degree(2) = %d, want 0 (self loop dropped)", g.Degree(2))
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := FromEdges(10, [][2]int32{{0, 9}})
	if g.NumVertices() != 10 {
		t.Errorf("NumVertices = %d, want 10", g.NumVertices())
	}
	for v := int32(1); v < 9; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("Degree(%d) = %d, want 0", v, g.Degree(v))
		}
	}
}

func TestFromSortedCSR(t *testing.T) {
	offsets := []int32{0, 1, 2}
	adj := []int32{1, 0}
	g, err := FromSortedCSR(offsets, adj)
	if err != nil {
		t.Fatalf("FromSortedCSR: %v", err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("edge 0-1 missing")
	}
	// Broken inputs must be rejected.
	if _, err := FromSortedCSR([]int32{0, 2, 2}, []int32{1, 1}); err == nil {
		t.Error("duplicate neighbours accepted")
	}
	if _, err := FromSortedCSR([]int32{0, 1, 2}, []int32{1, 1}); err == nil {
		t.Error("asymmetric arcs accepted")
	}
	if _, err := FromSortedCSR([]int32{0, 1, 1}, []int32{5}); err == nil {
		t.Error("out-of-range neighbour accepted")
	}
	if _, err := FromSortedCSR([]int32{1, 1}, nil); err == nil {
		t.Error("offsets[0] != 0 accepted")
	}
}

func TestClone(t *testing.T) {
	g := testGraph(t)
	c := g.Clone()
	c.adj[0] = 99 // mutating the clone must not affect the original
	if g.adj[0] == 99 {
		t.Error("Clone aliases original storage")
	}
}

func TestStats(t *testing.T) {
	// Star graph: hub degree n-1, leaves degree 1.
	n := 101
	edges := make([][2]int32, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int32{0, int32(v)})
	}
	g := FromEdges(n, edges)
	st := g.Stats()
	if st.Max != n-1 || st.Min != 1 {
		t.Errorf("star stats min/max = %d/%d, want 1/%d", st.Min, st.Max, n-1)
	}
	if st.P50 != 1 {
		t.Errorf("star P50 = %d, want 1", st.P50)
	}
	wantMean := float64(2*(n-1)) / float64(n)
	if diff := st.Mean - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("star mean = %v, want %v", st.Mean, wantMean)
	}
	if st.CV <= 1 {
		t.Errorf("star CV = %v, want > 1 (highly skewed)", st.CV)
	}
	// Cycle graph: every degree exactly 2 -> CV 0.
	cyc := make([][2]int32, n)
	for v := 0; v < n; v++ {
		cyc[v] = [2]int32{int32(v), int32((v + 1) % n)}
	}
	cg := FromEdges(n, cyc)
	cst := cg.Stats()
	if cst.CV != 0 || cst.Min != 2 || cst.Max != 2 {
		t.Errorf("cycle stats = %+v, want degree exactly 2 everywhere", cst)
	}
}

func TestDegrees(t *testing.T) {
	g := testGraph(t)
	d := g.Degrees()
	want := []int32{2, 2, 3, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Degrees = %v, want %v", d, want)
		}
	}
}

// randomEdges produces a reproducible random edge set over n vertices.
func randomEdges(rng *rand.Rand, n, m int) [][2]int32 {
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return edges
}

// Property: any random edge list builds a graph that passes Validate and
// where HasEdge agrees with membership in the input (modulo self loops).
func TestBuildValidatesProperty(t *testing.T) {
	f := func(seed int64, rawN uint8, rawM uint8) bool {
		n := int(rawN)%50 + 1
		m := int(rawM) % 200
		rng := rand.New(rand.NewSource(seed))
		edges := randomEdges(rng, n, m)
		g := FromEdges(n, edges)
		if err := g.Validate(); err != nil {
			t.Logf("Validate failed: %v", err)
			return false
		}
		for _, e := range edges {
			if e[0] != e[1] && !g.HasEdge(e[0], e[1]) {
				t.Logf("edge %v missing", e)
				return false
			}
		}
		// Handshake: arc count is even.
		return g.NumArcs()%2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
