//go:build race

package graph

// raceEnabled reports that the race detector is active; its
// instrumentation allocates, so allocation budgets don't hold.
const raceEnabled = true
