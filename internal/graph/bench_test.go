package graph

import (
	"math/rand"
	"testing"
)

func benchEdges(n, m int) [][2]int32 {
	rng := rand.New(rand.NewSource(1))
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return edges
}

func BenchmarkBuild(b *testing.B) {
	const n = 1 << 14
	edges := benchEdges(n, 12*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(n, edges)
	}
}

func BenchmarkValidate(b *testing.B) {
	const n = 1 << 14
	g := FromEdges(n, benchEdges(n, 12*n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStats(b *testing.B) {
	const n = 1 << 14
	g := FromEdges(n, benchEdges(n, 12*n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Stats()
	}
}

func BenchmarkRelabel(b *testing.B) {
	const n = 1 << 14
	g := FromEdges(n, benchEdges(n, 12*n))
	perm := DegreeOrder(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Relabel(g, perm); err != nil {
			b.Fatal(err)
		}
	}
}
