// Graph fingerprinting for the serving layer: a stable content hash that
// lets two requests carrying the same graph be recognized as duplicates
// (request coalescing) and lets completed colorings be cached by graph
// identity rather than by upload bytes.
package graph

import "fmt"

// fnv64 constants (FNV-1a). The hash is computed manually rather than via
// hash/maphash because the fingerprint must be stable across processes and
// releases: cache keys and golden test values depend on it.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// Fingerprint returns a stable 64-bit content hash of the graph.
//
// The hash covers the canonical CSR form — vertex count, offsets, and the
// sorted, deduplicated adjacency — so any two Graphs with the same vertex
// set and edge set hash equal regardless of the order edges were inserted,
// while any single-edge difference changes the hash with overwhelming
// probability. The value is deterministic across runs and platforms; it is
// a content identity, not a cryptographic commitment.
func (g *Graph) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	h = fnvInt32(h, int32(g.NumVertices()))
	// offsets are fully determined by (n, degrees); hashing them guards the
	// degree sequence even if adj were empty, and costs one pass.
	for _, o := range g.offsets {
		h = fnvInt32(h, o)
	}
	for _, a := range g.adj {
		h = fnvInt32(h, a)
	}
	return h
}

// FingerprintString renders a fingerprint the way the serving API and cache
// report it: 16 lowercase hex digits.
func FingerprintString(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// fnvInt32 folds one int32 into an FNV-1a state, little-endian byte order.
func fnvInt32(h uint64, v int32) uint64 {
	u := uint32(v)
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(u >> (8 * i)))
		h *= fnvPrime64
	}
	return h
}
