// Package graph provides the compressed-sparse-row (CSR) graph representation
// shared by every algorithm and by the SIMT simulator in this repository.
//
// Graphs are simple and undirected: every undirected edge {u, v} is stored as
// the two directed arcs u->v and v->u, self loops and duplicate edges are
// removed at build time, and adjacency lists are sorted by neighbour id.
// Vertex ids and CSR offsets are int32 so that the same arrays can be bound
// directly as simulated-GPU buffers; this caps graphs at 2^31-1 arcs, far
// beyond the scale exercised here.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Graph is an undirected graph in CSR form. The zero value is the empty
// graph. Construct non-empty graphs with NewBuilder or FromSortedCSR.
type Graph struct {
	offsets []int32 // len n+1; arc range of vertex v is offsets[v]:offsets[v+1]
	adj     []int32 // len m (directed arcs); sorted within each vertex range
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumArcs returns the number of directed arcs (twice the undirected edges).
func (g *Graph) NumArcs() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v as a shared sub-slice;
// callers must not modify it.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Offsets returns the CSR offset array (length NumVertices+1) as a shared
// slice; callers must not modify it.
func (g *Graph) Offsets() []int32 { return g.offsets }

// Adj returns the CSR adjacency array as a shared slice; callers must not
// modify it.
func (g *Graph) Adj() []int32 { return g.adj }

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v int32) bool {
	nbr := g.Neighbors(u)
	i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= v })
	return i < len(nbr) && nbr[i] == v
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(int32(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean vertex degree (0 for the empty graph).
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumArcs()) / float64(n)
}

// String implements fmt.Stringer with a one-line summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d maxdeg=%d}", g.NumVertices(), g.NumEdges(), g.MaxDegree())
}

// Validate checks the structural invariants of the CSR representation:
// offsets are monotone and bracket adj, neighbour ids are in range and
// strictly increasing (sorted, no duplicates, no self loops), and every arc
// has its reverse. It returns a descriptive error for the first violation.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.offsets) == 0 {
		if len(g.adj) != 0 {
			return fmt.Errorf("graph: nil offsets with %d arcs", len(g.adj))
		}
		return nil
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	if int(g.offsets[n]) != len(g.adj) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[n], len(g.adj))
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		nbr := g.Neighbors(int32(v))
		for i, u := range nbr {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbour %d", v, u)
			}
			if int32(v) == u {
				return fmt.Errorf("graph: self loop at vertex %d", v)
			}
			if i > 0 && nbr[i-1] >= u {
				return fmt.Errorf("graph: adjacency of vertex %d not strictly sorted at index %d", v, i)
			}
		}
	}
	// Symmetry: every arc must have its reverse.
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if !g.HasEdge(u, int32(v)) {
				return fmt.Errorf("graph: arc %d->%d has no reverse", v, u)
			}
		}
	}
	return nil
}

// FromSortedCSR wraps pre-built CSR arrays in a Graph without copying.
// The arrays must already satisfy the invariants checked by Validate;
// FromSortedCSR verifies them and returns an error otherwise.
func FromSortedCSR(offsets, adj []int32) (*Graph, error) {
	g := &Graph{offsets: offsets, adj: adj}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		offsets: make([]int32, len(g.offsets)),
		adj:     make([]int32, len(g.adj)),
	}
	copy(c.offsets, g.offsets)
	copy(c.adj, g.adj)
	return c
}

// Degrees returns a freshly allocated slice of all vertex degrees.
func (g *Graph) Degrees() []int32 {
	n := g.NumVertices()
	d := make([]int32, n)
	for v := 0; v < n; v++ {
		d[v] = g.offsets[v+1] - g.offsets[v]
	}
	return d
}

// DegreeStats summarizes the degree distribution of a graph.
type DegreeStats struct {
	Min, Max   int
	Mean       float64
	StdDev     float64
	CV         float64 // coefficient of variation: StdDev/Mean (0 if Mean==0)
	P50, P90   int
	P99        int
	MaxOverAvg float64 // Max/Mean (0 if Mean==0)
}

// Stats computes degree-distribution statistics in one pass plus a sort for
// the percentiles.
func (g *Graph) Stats() DegreeStats {
	n := g.NumVertices()
	if n == 0 {
		return DegreeStats{}
	}
	degs := make([]int, n)
	var sum, sumsq float64
	min, max := math.MaxInt, 0
	for v := 0; v < n; v++ {
		d := g.Degree(int32(v))
		degs[v] = d
		sum += float64(d)
		sumsq += float64(d) * float64(d)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	sd := math.Sqrt(variance)
	sort.Ints(degs)
	pct := func(p float64) int {
		i := int(p * float64(n-1))
		return degs[i]
	}
	st := DegreeStats{
		Min: min, Max: max, Mean: mean, StdDev: sd,
		P50: pct(0.50), P90: pct(0.90), P99: pct(0.99),
	}
	if mean > 0 {
		st.CV = sd / mean
		st.MaxOverAvg = float64(max) / mean
	}
	return st
}
