// Graph mutation deltas for the incremental serving path.
//
// A Delta is a small edit script against a base graph: vertices appended,
// undirected edges added, undirected edges removed. ApplyDelta materializes
// the successor CSR in one merge pass and reports the *frontier* — the
// vertex set whose neighbourhoods actually changed — which is exactly the
// set an incremental recolorer must revisit: endpoints of effective edge
// additions (a new adjacency can conflict), freshly appended vertices
// (uncolored), and endpoints of effective removals (their palette may
// shrink, so recoloring them can only improve the coloring). Everything
// outside the frontier keeps both its adjacency and, downstream, its color.
//
// The successor's fingerprint is computed streaming during the same build
// pass and is bit-identical to Graph.Fingerprint() of the result: a version
// chain's identity collapses to content identity, so a delta-produced graph
// and a from-scratch upload of the same graph share cache, coalescing, and
// routing keys.
package graph

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Delta is one edit script against a base graph. Add/remove lists hold
// undirected edges in either endpoint order; duplicates are tolerated and
// collapse. Removing an absent edge and adding a present one are no-ops
// (they do not enter the frontier). An edge present in both lists is
// treated as remove-then-add: present in the successor, not a change.
type Delta struct {
	// AddVertices appends this many isolated vertices (ids n..n+k-1).
	AddVertices int
	// AddEdges / RemoveEdges are undirected edge lists. Added edges may
	// touch the appended vertices; self loops are rejected.
	AddEdges    [][2]int32
	RemoveEdges [][2]int32
}

// Size returns the number of edge operations in the delta.
func (d *Delta) Size() int { return len(d.AddEdges) + len(d.RemoveEdges) }

// ApplyDelta builds the successor graph of g under d. It returns the new
// graph, its content fingerprint (bit-identical to ng.Fingerprint(),
// computed streaming during the build), and the sorted, deduplicated
// frontier of vertices whose adjacency changed (including every appended
// vertex). g is not modified; the successor shares no storage with it.
func ApplyDelta(g *Graph, d *Delta) (*Graph, uint64, []int32, error) {
	n := g.NumVertices()
	if d.AddVertices < 0 {
		return nil, 0, nil, fmt.Errorf("graph: delta: negative AddVertices %d", d.AddVertices)
	}
	newN := n + d.AddVertices
	if newN > MaxVertices {
		return nil, 0, nil, fmt.Errorf("graph: delta: %d vertices exceeds limit %d", newN, MaxVertices)
	}

	// Canonicalize the edit lists into directed arc lists (both directions
	// of every undirected edge), sorted by (src, dst), deduplicated.
	addArcs, err := deltaArcs(d.AddEdges, newN, "add")
	if err != nil {
		return nil, 0, nil, err
	}
	remArcs, err := deltaArcs(d.RemoveEdges, newN, "remove")
	if err != nil {
		return nil, 0, nil, err
	}

	// Successor arc count: walk both lists once against the base to count
	// effective operations, marking the frontier as we go. An add is
	// effective iff the arc is absent from the base; a remove iff present
	// in the base and not re-added.
	inFrontier := make([]bool, newN)
	effAdd := 0
	for _, a := range addArcs {
		if int(a[0]) >= n || !g.HasEdge(a[0], a[1]) {
			effAdd++
			inFrontier[a[0]] = true
		}
	}
	effRem := 0
	for _, r := range remArcs {
		if int(r[0]) < n && g.HasEdge(r[0], r[1]) && !arcListHas(addArcs, r) {
			effRem++
			inFrontier[r[0]] = true
		}
	}
	for v := n; v < newN; v++ {
		inFrontier[v] = true
	}
	newM := g.NumArcs() + effAdd - effRem
	if int64(newN)+1+int64(newM) > 1<<31-1 {
		return nil, 0, nil, fmt.Errorf("graph: delta: %d arcs overflows int32", newM)
	}

	// Merge pass: per vertex, result = (base ∪ adds) \ (removes \ adds),
	// all three lists sorted. The fingerprint folds exactly the fields
	// Graph.Fingerprint covers, in the same order: n, offsets, adj.
	buf := make([]int32, newN+1+newM)
	offsets := buf[: newN+1 : newN+1]
	adj := buf[newN+1 : newN+1]
	ai, ri := 0, 0
	for v := int32(0); int(v) < newN; v++ {
		offsets[v] = int32(len(adj))
		var base []int32
		if int(v) < n {
			base = g.Neighbors(v)
		}
		bi := 0
		for bi < len(base) || (ai < len(addArcs) && addArcs[ai][0] == v) {
			var next int32
			fromAdd := false
			if bi < len(base) && (ai >= len(addArcs) || addArcs[ai][0] != v || base[bi] <= addArcs[ai][1]) {
				next = base[bi]
				if ai < len(addArcs) && addArcs[ai][0] == v && addArcs[ai][1] == next {
					ai++ // add of a present edge: one emit
					fromAdd = true
				}
				bi++
			} else {
				next = addArcs[ai][1]
				ai++
				fromAdd = true
			}
			for ri < len(remArcs) && (remArcs[ri][0] < v || (remArcs[ri][0] == v && remArcs[ri][1] < next)) {
				ri++
			}
			if !fromAdd && ri < len(remArcs) && remArcs[ri][0] == v && remArcs[ri][1] == next {
				continue // removed, not re-added
			}
			adj = append(adj, next)
		}
	}
	offsets[newN] = int32(len(adj))
	if len(adj) != newM {
		// Counting and merging disagree only on a bug in this file.
		panic(fmt.Sprintf("graph: delta: merged %d arcs, counted %d", len(adj), newM))
	}

	fp := uint64(fnvOffset64)
	fp = fnvInt32(fp, int32(newN))
	for _, o := range offsets {
		fp = fnvInt32(fp, o)
	}
	for _, a := range adj {
		fp = fnvInt32(fp, a)
	}

	frontier := make([]int32, 0, 2*d.Size()+d.AddVertices)
	for v := int32(0); int(v) < newN; v++ {
		if inFrontier[v] {
			frontier = append(frontier, v)
		}
	}
	return &Graph{offsets: offsets, adj: adj}, fp, frontier, nil
}

// deltaArcs expands undirected edges into sorted, deduplicated directed
// arcs, validating endpoints against the successor vertex count.
func deltaArcs(edges [][2]int32, newN int, op string) ([][2]int32, error) {
	if len(edges) == 0 {
		return nil, nil
	}
	arcs := make([][2]int32, 0, 2*len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || int(u) >= newN || int(v) >= newN {
			return nil, fmt.Errorf("graph: delta: %s edge {%d,%d} out of range [0,%d)", op, u, v, newN)
		}
		if u == v {
			return nil, fmt.Errorf("graph: delta: %s edge {%d,%d} is a self loop", op, u, v)
		}
		arcs = append(arcs, [2]int32{u, v}, [2]int32{v, u})
	}
	sort.Slice(arcs, func(i, k int) bool {
		if arcs[i][0] != arcs[k][0] {
			return arcs[i][0] < arcs[k][0]
		}
		return arcs[i][1] < arcs[k][1]
	})
	out := arcs[:1]
	for _, a := range arcs[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return out, nil
}

// arcListHas reports whether the sorted arc list contains a.
func arcListHas(arcs [][2]int32, a [2]int32) bool {
	i := sort.Search(len(arcs), func(i int) bool {
		if arcs[i][0] != a[0] {
			return arcs[i][0] > a[0]
		}
		return arcs[i][1] >= a[1]
	})
	return i < len(arcs) && arcs[i] == a
}

// Binary delta wire frame, the incremental counterpart of the CSR frame in
// wire.go. Same transport Content-Type; the magic distinguishes them.
//
//	offset  size      field
//	0       4         magic "GCSD"
//	4       2         version (currently 1)
//	6       2         flags (must be zero in version 1)
//	8       8         base graph content fingerprint (uint64)
//	16      4         addVertices (uint32)
//	20      4         nAddEdges (uint32)
//	24      4         nRemoveEdges (uint32)
//	28      8*nAdd    add edges, two int32 endpoints each
//	...     8*nRem    remove edges, two int32 endpoints each
//
// All fields little-endian. The frame is self-delimiting; trailing bytes
// are rejected.
const (
	WireDeltaMagic   = "GCSD"
	WireDeltaVersion = 1

	wireDeltaHeaderLen = 28
)

// WireDeltaSize returns the encoded frame size for d in bytes.
func WireDeltaSize(d *Delta) int {
	return wireDeltaHeaderLen + 8*len(d.AddEdges) + 8*len(d.RemoveEdges)
}

// EncodeWireDelta returns the binary delta frame for d against the base
// graph identified by baseFp.
func EncodeWireDelta(baseFp uint64, d *Delta) []byte {
	dst := make([]byte, 0, WireDeltaSize(d))
	dst = append(dst, WireDeltaMagic...)
	dst = binary.LittleEndian.AppendUint16(dst, WireDeltaVersion)
	dst = binary.LittleEndian.AppendUint16(dst, 0) // flags
	dst = binary.LittleEndian.AppendUint64(dst, baseFp)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(d.AddVertices))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(d.AddEdges)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(d.RemoveEdges)))
	for _, e := range d.AddEdges {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e[0]))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e[1]))
	}
	for _, e := range d.RemoveEdges {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e[0]))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e[1]))
	}
	return dst
}

// IsWireDelta sniffs the delta frame magic.
func IsWireDelta(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == WireDeltaMagic
}

// DecodeWireDelta parses a binary delta frame. Endpoint range and self-loop
// validation happen in ApplyDelta (they need the base vertex count); the
// decoder validates framing, counts, and the vertex cap.
func DecodeWireDelta(data []byte) (uint64, *Delta, error) {
	if len(data) < wireDeltaHeaderLen {
		return 0, nil, fmt.Errorf("gcsd: truncated header: %d bytes, want at least %d", len(data), wireDeltaHeaderLen)
	}
	if string(data[:4]) != WireDeltaMagic {
		return 0, nil, fmt.Errorf("gcsd: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != WireDeltaVersion {
		return 0, nil, fmt.Errorf("gcsd: unsupported version %d", v)
	}
	if fl := binary.LittleEndian.Uint16(data[6:8]); fl != 0 {
		return 0, nil, fmt.Errorf("gcsd: unsupported flags %#x", fl)
	}
	baseFp := binary.LittleEndian.Uint64(data[8:16])
	addV := int64(binary.LittleEndian.Uint32(data[16:20]))
	nAdd := int64(binary.LittleEndian.Uint32(data[20:24]))
	nRem := int64(binary.LittleEndian.Uint32(data[24:28]))
	if addV > int64(MaxVertices) {
		return 0, nil, fmt.Errorf("gcsd: addVertices %d exceeds limit %d", addV, MaxVertices)
	}
	want := int64(wireDeltaHeaderLen) + 8*nAdd + 8*nRem
	if int64(len(data)) < want {
		return 0, nil, fmt.Errorf("gcsd: frame is %d bytes, header declares %d", len(data), want)
	}
	if int64(len(data)) > want {
		return 0, nil, fmt.Errorf("gcsd: %d trailing bytes past declared frame end", int64(len(data))-want)
	}
	d := &Delta{AddVertices: int(addV)}
	body := data[wireDeltaHeaderLen:]
	readEdges := func(k int64) [][2]int32 {
		if k == 0 {
			return nil
		}
		out := make([][2]int32, k)
		for i := range out {
			out[i][0] = int32(binary.LittleEndian.Uint32(body[8*i:]))
			out[i][1] = int32(binary.LittleEndian.Uint32(body[8*i+4:]))
		}
		body = body[8*k:]
		return out
	}
	d.AddEdges = readEdges(nAdd)
	d.RemoveEdges = readEdges(nRem)
	return baseFp, d, nil
}
