package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := "# a comment\n# n 6\n0 1\n1 2\n\n% another comment\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumVertices() != 6 {
		t.Errorf("NumVertices = %d, want 6 (from directive)", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",
		"a b\n",
		"0 x\n",
		"-1 2\n",
		"0 99999999999999999999\n", // overflows int32
		"0 268435456\n",            // exceeds MaxVertices
		"# n 999999999999\n0 1\n",  // declared count exceeds MaxVertices
		"0 9999999999\n",           // exceeds int32 range via ParseInt
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", in)
		}
	}
}

// TestParserLimitsBoundAllocation: hostile size declarations must be
// rejected by every parser before any proportional allocation happens.
func TestParserLimitsBoundAllocation(t *testing.T) {
	if _, err := readEdgeListLimit(strings.NewReader("0 5000\n"), 100); err == nil {
		t.Error("edge list: id over the cap accepted")
	}
	if _, err := readDIMACSLimit(strings.NewReader("p edge 5000 0\n"), 100); err == nil {
		t.Error("dimacs: vertex count over the cap accepted")
	}
	if _, err := readMatrixMarketLimit(strings.NewReader("%%MatrixMarket matrix coordinate pattern general\n5000 5000 0\n"), 100); err == nil {
		t.Error("mtx: dimension over the cap accepted")
	}
	// At exactly the cap all three still parse.
	if _, err := readEdgeListLimit(strings.NewReader("0 99\n"), 100); err != nil {
		t.Errorf("edge list at the cap rejected: %v", err)
	}
	if _, err := readDIMACSLimit(strings.NewReader("p edge 100 0\n"), 100); err != nil {
		t.Errorf("dimacs at the cap rejected: %v", err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := FromEdges(30, randomEdges(rng, 30, 100))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	assertSameGraph(t, g, back)
}

func TestReadDIMACS(t *testing.T) {
	in := "c comment\np edge 4 3\ne 1 2\ne 2 3\ne 3 4\n"
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadDIMACS: %v", err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Errorf("got n=%d m=%d, want 4, 3", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Error("expected edges missing (1-based conversion broken?)")
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"e 1 2\n",                  // edge before problem line
		"p edge 2 1\ne 1 3\n",      // out of range
		"p edge 2 1\np edge 2 1\n", // duplicate problem line
		"p edge\n",                 // malformed problem line
		"p edge 2 1\ne 1\n",        // malformed edge
		"p edge 2 1\nq 1 2\n",      // unknown record
		"p edge x 1\n",             // bad count
		"",                         // missing problem line
		"p edge 2 1\ne one two\n",  // non-numeric edge
	}
	for _, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("ReadDIMACS(%q) succeeded, want error", in)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := FromEdges(25, randomEdges(rng, 25, 80))
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatalf("WriteDIMACS: %v", err)
	}
	back, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatalf("ReadDIMACS: %v", err)
	}
	assertSameGraph(t, g, back)
}

func TestReadMatrixMarket(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% comment
3 3 3
1 2
2 3
1 1
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadMatrixMarket: %v", err)
	}
	if g.NumVertices() != 3 {
		t.Errorf("NumVertices = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 (diagonal dropped)", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Error("expected edges missing")
	}
}

func TestReadMatrixMarketRealField(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 3.5\n2 1 3.5\n"
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadMatrixMarket: %v", err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("edge missing from real-valued matrix")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 9\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1\n",
		"%%MatrixMarket matrix coordinate pattern general\nx y z\n",
		"%%MatrixMarket matrix coordinate pattern general\n",
		"%%MatrixMarket matrix coordinate pattern general\n-5 -5 1\n", // negative dims must not reach NewBuilder
		"%%MatrixMarket matrix coordinate pattern general\n999999999999 999999999999 1\n",
	}
	for _, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("ReadMatrixMarket(%q) succeeded, want error", in)
		}
	}
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("graphs differ: n=%d/%d m=%d/%d",
			a.NumVertices(), b.NumVertices(), a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(int32(v)), b.Neighbors(int32(v))
		if len(na) != len(nb) {
			t.Fatalf("vertex %d degree differs: %d vs %d", v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d adjacency differs at %d: %d vs %d", v, i, na[i], nb[i])
			}
		}
	}
}
