package gen

import "testing"

func BenchmarkRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RMAT(13, 16, Graph500, 1)
	}
}

func BenchmarkGNM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GNM(1<<13, 12<<13, 1)
	}
}

func BenchmarkBarabasiAlbert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BarabasiAlbert(1<<13, 8, 1)
	}
}

func BenchmarkRandomGeometric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RandomGeometric(1<<13, 0.02, 1)
	}
}
