// Package gen provides deterministic synthetic graph generators spanning the
// structural range the paper characterizes: regular meshes (low degree
// variance), uniform random graphs, and scale-free graphs whose hub vertices
// drive SIMT load imbalance. All generators are seeded and reproducible.
//
// These generators stand in for the real-world datasets used in the paper's
// evaluation (SuiteSparse/SNAP-style inputs); see DESIGN.md for the
// substitution rationale.
//
// Panic policy: generator parameters are programmer input, not external
// data, so out-of-domain arguments (negative sizes, an odd Watts–Strogatz
// k, a Barabási–Albert attachment count outside [1,n)) panic with a
// message naming the violated precondition. Code that forwards untrusted
// values — command-line flags, parsed files — must validate them first;
// cmd/graphgen does exactly that. Anything reachable from *well-formed*
// parameters never panics.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"gcolor/internal/graph"
)

// RMATParams configures the recursive-matrix (R-MAT) generator.
type RMATParams struct {
	A, B, C float64 // quadrant probabilities; D is 1-A-B-C
	Noise   float64 // per-level multiplicative noise applied to A..D
}

// Graph500 holds the standard Graph500 R-MAT parameters (a=0.57, b=c=0.19),
// producing a heavy-tailed, hub-clustered degree distribution.
var Graph500 = RMATParams{A: 0.57, B: 0.19, C: 0.19, Noise: 0.1}

// RMAT generates an R-MAT graph with 2^scale vertices and about
// edgeFactor*2^scale undirected edges (duplicates and self loops are removed,
// so the final count is slightly lower). Hubs concentrate at low vertex ids,
// which is exactly the placement that breaks static workgroup scheduling.
func RMAT(scale, edgeFactor int, p RMATParams, seed int64) *graph.Graph {
	if scale < 0 || scale > 30 {
		panic(fmt.Sprintf("gen: RMAT scale %d out of range [0,30]", scale))
	}
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := rmatEdge(rng, scale, p)
		b.AddEdge(int32(u), int32(v))
	}
	return b.Build()
}

func rmatEdge(rng *rand.Rand, scale int, p RMATParams) (int, int) {
	u, v := 0, 0
	a, bq, c := p.A, p.B, p.C
	for bit := 0; bit < scale; bit++ {
		// Per-level noise keeps the degree distribution from being too
		// stair-stepped (standard R-MAT practice).
		na := a * (1 - p.Noise/2 + p.Noise*rng.Float64())
		nb := bq * (1 - p.Noise/2 + p.Noise*rng.Float64())
		nc := c * (1 - p.Noise/2 + p.Noise*rng.Float64())
		r := rng.Float64() * (na + nb + nc + (1 - a - bq - c))
		switch {
		case r < na:
			// top-left: no bits set
		case r < na+nb:
			v |= 1 << bit
		case r < na+nb+nc:
			u |= 1 << bit
		default:
			u |= 1 << bit
			v |= 1 << bit
		}
	}
	return u, v
}

// GNM generates a uniform random graph with n vertices and (up to) m distinct
// undirected edges (Erdős–Rényi G(n,m); duplicates are merged so very dense
// requests converge to the complete graph).
func GNM(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

// Grid2D generates a rows x cols lattice with 4-point (von Neumann)
// connectivity, the stencil structure of the paper's mesh-like inputs
// (ecology, circuit matrices). Degree is 2..4 — essentially no imbalance.
func Grid2D(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Grid3D generates an x*y*z lattice with 6-point connectivity.
func Grid3D(x, y, z int) *graph.Graph {
	b := graph.NewBuilder(x * y * z)
	id := func(i, j, k int) int32 { return int32((i*y+j)*z + k) }
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if i+1 < x {
					b.AddEdge(id(i, j, k), id(i+1, j, k))
				}
				if j+1 < y {
					b.AddEdge(id(i, j, k), id(i, j+1, k))
				}
				if k+1 < z {
					b.AddEdge(id(i, j, k), id(i, j, k+1))
				}
			}
		}
	}
	return b.Build()
}

// RandomGeometric places n points uniformly in the unit square and connects
// pairs within the given radius — a road-network-like structure: low,
// spatially correlated degrees. Uses a cell grid, so it is O(n) for radii
// that keep the expected degree constant.
func RandomGeometric(n int, radius float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	grid := make(map[[2]int][]int32)
	cell := func(i int) [2]int {
		cx, cy := int(xs[i]*float64(cells)), int(ys[i]*float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for i := 0; i < n; i++ {
		c := cell(i)
		grid[c] = append(grid[c], int32(i))
	}
	b := graph.NewBuilder(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		c := cell(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[[2]int{c[0] + dx, c[1] + dy}] {
					if int32(i) >= j {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						b.AddEdge(int32(i), j)
					}
				}
			}
		}
	}
	return b.Build()
}

// WattsStrogatz generates a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbours, with each edge rewired to a
// random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	if k%2 != 0 {
		panic(fmt.Sprintf("gen: WattsStrogatz k=%d must be even", k))
	}
	if k >= n {
		panic(fmt.Sprintf("gen: WattsStrogatz k=%d must be < n=%d", k, n))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			u := (v + j) % n
			if rng.Float64() < beta {
				u = rng.Intn(n)
				for u == v {
					u = rng.Intn(n)
				}
			}
			b.AddEdge(int32(v), int32(u))
		}
	}
	return b.Build()
}

// BarabasiAlbert generates a preferential-attachment graph: each new vertex
// attaches m edges to existing vertices with probability proportional to
// degree, yielding a power-law tail with hubs at low ids.
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if m < 1 || m >= n {
		panic(fmt.Sprintf("gen: BarabasiAlbert m=%d must be in [1,n)", m))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// targets holds one entry per arc endpoint, so uniform sampling from it
	// is degree-proportional sampling.
	targets := make([]int32, 0, 2*m*n)
	// Seed clique over the first m+1 vertices.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			b.AddEdge(int32(u), int32(v))
			targets = append(targets, int32(u), int32(v))
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := make(map[int32]bool, m)
		for len(chosen) < m {
			u := targets[rng.Intn(len(targets))]
			if u != int32(v) {
				chosen[u] = true
			}
		}
		for u := range chosen {
			b.AddEdge(int32(v), u)
			targets = append(targets, int32(v), u)
		}
	}
	return b.Build()
}

// Star generates the star graph K_{1,n-1}: vertex 0 connected to all others.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, int32(v))
	}
	return b.Build()
}

// Path generates the path graph on n vertices.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(int32(v), int32(v+1))
	}
	return b.Build()
}

// Cycle generates the cycle graph on n vertices (n >= 3).
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: Cycle needs n >= 3, got %d", n))
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(int32(v), int32((v+1)%n))
	}
	return b.Build()
}

// Complete generates the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.Build()
}

// ExpectedGeometricDegree returns the expected degree of RandomGeometric for
// the given n and radius (ignoring boundary effects): n * pi * r^2.
func ExpectedGeometricDegree(n int, radius float64) float64 {
	return float64(n) * math.Pi * radius * radius
}
