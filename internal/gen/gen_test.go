package gen

import (
	"testing"
	"testing/quick"

	"gcolor/internal/graph"
)

func validate(t *testing.T, g *graph.Graph, name string) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: invalid graph: %v", name, err)
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, Graph500, 42)
	validate(t, g, "rmat")
	if g.NumVertices() != 1024 {
		t.Errorf("NumVertices = %d, want 1024", g.NumVertices())
	}
	// Dedup removes some edges, but most should survive.
	if g.NumEdges() < 1024 || g.NumEdges() > 8*1024 {
		t.Errorf("NumEdges = %d, out of plausible range", g.NumEdges())
	}
	// Scale-free: degree CV must be high (the point of R-MAT here).
	if st := g.Stats(); st.CV < 0.8 {
		t.Errorf("RMAT degree CV = %.2f, want >= 0.8 (scale-free)", st.CV)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(8, 4, Graph500, 1)
	b := RMAT(8, 4, Graph500, 1)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	c := RMAT(8, 4, Graph500, 2)
	if a.NumEdges() == c.NumEdges() && a.MaxDegree() == c.MaxDegree() && a.Stats().CV == c.Stats().CV {
		t.Error("different seeds produced identical graphs (suspicious)")
	}
}

func TestRMATPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RMAT(-1) did not panic")
		}
	}()
	RMAT(-1, 4, Graph500, 0)
}

func TestGNM(t *testing.T) {
	g := GNM(500, 2000, 7)
	validate(t, g, "gnm")
	if g.NumVertices() != 500 {
		t.Errorf("NumVertices = %d, want 500", g.NumVertices())
	}
	if g.NumEdges() < 1800 || g.NumEdges() > 2000 {
		t.Errorf("NumEdges = %d, want close to 2000", g.NumEdges())
	}
	// Uniform random: low CV.
	if st := g.Stats(); st.CV > 0.6 {
		t.Errorf("GNM degree CV = %.2f, want < 0.6 (uniform)", st.CV)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(5, 7)
	validate(t, g, "grid2d")
	if g.NumVertices() != 35 {
		t.Errorf("NumVertices = %d, want 35", g.NumVertices())
	}
	// Edge count for a rows x cols grid: rows*(cols-1) + cols*(rows-1).
	want := 5*6 + 7*4
	if g.NumEdges() != want {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
	if g.MaxDegree() != 4 {
		t.Errorf("MaxDegree = %d, want 4", g.MaxDegree())
	}
	// Corner vertex 0 has degree 2.
	if g.Degree(0) != 2 {
		t.Errorf("corner degree = %d, want 2", g.Degree(0))
	}
}

func TestGrid3D(t *testing.T) {
	g := Grid3D(3, 4, 5)
	validate(t, g, "grid3d")
	if g.NumVertices() != 60 {
		t.Errorf("NumVertices = %d, want 60", g.NumVertices())
	}
	want := 2*4*5 + 3*3*5 + 3*4*4
	if g.NumEdges() != want {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
	if g.MaxDegree() != 6 {
		t.Errorf("MaxDegree = %d, want 6", g.MaxDegree())
	}
}

func TestRandomGeometric(t *testing.T) {
	g := RandomGeometric(2000, 0.05, 3)
	validate(t, g, "geo")
	mean := g.AvgDegree()
	expected := ExpectedGeometricDegree(2000, 0.05)
	// Boundary effects push the realized mean below the expectation.
	if mean < 0.5*expected || mean > 1.2*expected {
		t.Errorf("mean degree %.2f far from expected %.2f", mean, expected)
	}
	// Every edge must respect the radius: spot-check via re-embedding is not
	// possible (coords are internal), but spatial graphs must have low CV.
	if st := g.Stats(); st.CV > 0.8 {
		t.Errorf("geometric degree CV = %.2f, want < 0.8", st.CV)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(300, 6, 0.1, 5)
	validate(t, g, "ws")
	if g.NumVertices() != 300 {
		t.Errorf("NumVertices = %d, want 300", g.NumVertices())
	}
	// Each vertex initiates k/2 edges; rewiring + dedup can only lose a few.
	if g.NumEdges() < 850 || g.NumEdges() > 900 {
		t.Errorf("NumEdges = %d, want ~900", g.NumEdges())
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	for _, c := range []struct{ n, k int }{{10, 3}, {4, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WattsStrogatz(%d,%d) did not panic", c.n, c.k)
				}
			}()
			WattsStrogatz(c.n, c.k, 0.1, 0)
		}()
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(1000, 4, 9)
	validate(t, g, "ba")
	if g.NumVertices() != 1000 {
		t.Errorf("NumVertices = %d, want 1000", g.NumVertices())
	}
	// Power-law tail: max degree far above mean.
	st := g.Stats()
	if st.MaxOverAvg < 3 {
		t.Errorf("BA max/avg = %.2f, want >= 3 (hub formation)", st.MaxOverAvg)
	}
	// Every non-seed vertex attached m edges.
	minEdges := (1000 - 5) * 4
	if g.NumEdges() < minEdges {
		t.Errorf("NumEdges = %d, want >= %d", g.NumEdges(), minEdges)
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BarabasiAlbert(m>=n) did not panic")
		}
	}()
	BarabasiAlbert(3, 3, 0)
}

func TestStarPathCycleComplete(t *testing.T) {
	s := Star(10)
	validate(t, s, "star")
	if s.Degree(0) != 9 || s.Degree(5) != 1 {
		t.Errorf("star degrees wrong: hub=%d leaf=%d", s.Degree(0), s.Degree(5))
	}
	p := Path(10)
	validate(t, p, "path")
	if p.NumEdges() != 9 || p.Degree(0) != 1 || p.Degree(5) != 2 {
		t.Errorf("path shape wrong")
	}
	c := Cycle(10)
	validate(t, c, "cycle")
	if c.NumEdges() != 10 || c.MaxDegree() != 2 {
		t.Errorf("cycle shape wrong")
	}
	k := Complete(6)
	validate(t, k, "complete")
	if k.NumEdges() != 15 || k.MaxDegree() != 5 {
		t.Errorf("complete shape wrong")
	}
}

func TestCyclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cycle(2) did not panic")
		}
	}()
	Cycle(2)
}

// Property: every generator output passes graph validation for arbitrary
// small parameters.
func TestGeneratorsAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%60 + 10
		graphs := []*graph.Graph{
			GNM(n, 3*n, seed),
			WattsStrogatz(n, 4, 0.3, seed),
			BarabasiAlbert(n, 2, seed),
			RandomGeometric(n, 0.2, seed),
		}
		for _, g := range graphs {
			if g.Validate() != nil {
				return false
			}
			if g.NumVertices() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
