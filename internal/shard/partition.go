package shard

import (
	"fmt"

	"gcolor/internal/graph"
)

// Range is one shard's contiguous vertex interval [Lo, Hi).
type Range struct {
	Lo, Hi int32
}

// Size returns the number of vertices in the range.
func (r Range) Size() int { return int(r.Hi - r.Lo) }

// Plan is a K-way partition of a graph: contiguous vertex ranges balanced
// by work (arcs, the paper's imbalance lesson lifted from lanes to
// devices), one internal-edge subgraph per shard in local vertex ids, and
// the list of cut edges whose endpoints landed in different shards. The
// subgraphs are independent coloring problems; the cut edges are the only
// places the per-shard colorings can disagree, and the boundary repair
// loop (RepairBoundary) resolves exactly those.
type Plan struct {
	// K is the number of shards actually produced (always the k requested;
	// Partition clamps k to the vertex count before building).
	K int
	// Ranges lists each shard's global vertex interval, in order; the
	// intervals are disjoint and cover [0, NumVertices).
	Ranges []Range
	// Subs holds one subgraph per shard containing only the shard's
	// internal edges, with vertex v of shard s appearing as local id
	// v - Ranges[s].Lo.
	Subs []*graph.Graph
	// Boundary lists every cut edge {u, v} exactly once as [2]int32{u, v}
	// with u < v (global ids).
	Boundary [][2]int32
	// Weights holds each shard's work weight (internal arcs + vertices),
	// the balance evidence the partitioner optimized.
	Weights []int
}

// Shard returns the shard index owning global vertex v. Ranges are
// contiguous and ordered, so this is a binary search.
func (p *Plan) Shard(v int32) int {
	lo, hi := 0, len(p.Ranges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v >= p.Ranges[mid].Hi {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CutEdges returns the number of cross-shard edges.
func (p *Plan) CutEdges() int { return len(p.Boundary) }

// Partition splits g into k edge-balanced contiguous shards. Cut points
// are chosen so every shard carries about 1/k of the work weight
// (degree + 1 per vertex, so zero-degree stretches still advance), then —
// with refine set — each cut is swept over a small window to the position
// crossing the fewest edges, subject to keeping the balance within
// tolerance. k is clamped to the vertex count; k <= 0 or an empty graph
// is an error.
func Partition(g *graph.Graph, k int, refine bool) (*Plan, error) {
	n := g.NumVertices()
	if k < 1 {
		return nil, fmt.Errorf("shard: k = %d, want >= 1", k)
	}
	if n == 0 {
		return nil, fmt.Errorf("shard: cannot partition an empty graph")
	}
	if k > n {
		k = n
	}
	cuts := balancedCuts(g, k)
	if refine && k > 1 {
		refineCuts(g, cuts)
	}
	p := &Plan{
		K:       k,
		Ranges:  make([]Range, k),
		Subs:    make([]*graph.Graph, k),
		Weights: make([]int, k),
	}
	for s := 0; s < k; s++ {
		p.Ranges[s] = Range{Lo: cuts[s], Hi: cuts[s+1]}
	}
	if err := p.buildSubs(g); err != nil {
		return nil, err
	}
	return p, nil
}

// balancedCuts walks the vertices once, cutting whenever the accumulated
// work weight reaches the running ideal. The trailing guard hands every
// remaining shard at least one vertex, so no shard is ever empty.
func balancedCuts(g *graph.Graph, k int) []int32 {
	n := g.NumVertices()
	total := g.NumArcs() + n
	cuts := make([]int32, k+1)
	cuts[k] = int32(n)
	acc, next := 0, 1
	for v := 0; v < n && next < k; v++ {
		acc += g.Degree(int32(v)) + 1
		// Cut after v once this shard holds its share, or when only
		// exactly enough vertices remain to give the rest one each.
		share := total * next / k
		if acc >= share || n-(v+1) == k-next {
			cuts[next] = int32(v + 1)
			next++
		}
	}
	// If the loop ran out of vertices (extreme skew), pack the remaining
	// cuts at the tail so every range stays non-empty.
	for ; next < k; next++ {
		cuts[next] = int32(n - (k - next))
	}
	return cuts
}

// refineCuts nudges each internal cut within a small window to the
// position crossing the fewest edges. The window bounds how far the
// balance can drift, and a shift is only kept while both neighbouring
// ranges stay non-empty.
func refineCuts(g *graph.Graph, cuts []int32) {
	n := int32(g.NumVertices())
	k := len(cuts) - 1
	window := int32(n) / int32(16*k)
	if window < 4 {
		window = 4
	}
	if window > 256 {
		window = 256
	}
	for i := 1; i < k; i++ {
		lo := cuts[i-1] + 1
		hi := cuts[i+1] - 1 // last admissible cut position keeps right side non-empty
		if wLo := cuts[i] - window; wLo > lo {
			lo = wLo
		}
		if wHi := cuts[i] + window; wHi < hi {
			hi = wHi
		}
		if lo > hi {
			continue
		}
		// crossing(c) = edges {u, v} with u < c <= v. Computed directly at
		// the window start, then advanced incrementally: moving the cut
		// past vertex c turns its left-pointing edges internal and its
		// right-pointing edges into cuts.
		cross := crossingAt(g, lo)
		best, bestCross := lo, cross
		for c := lo; c < hi; c++ {
			left, right := 0, 0
			for _, u := range g.Neighbors(c) {
				if u < c {
					left++
				} else {
					right++
				}
			}
			cross += right - left
			if cross < bestCross || (cross == bestCross && abs32(c+1-cuts[i]) < abs32(best-cuts[i])) {
				best, bestCross = c+1, cross
			}
		}
		cuts[i] = best
	}
}

// crossingAt counts the edges {u, v} with u < c <= v.
func crossingAt(g *graph.Graph, c int32) int {
	cross := 0
	for v := int32(0); v < c; v++ {
		nbr := g.Neighbors(v)
		// Neighbour lists are sorted; count the suffix >= c.
		lo, hi := 0, len(nbr)
		for lo < hi {
			mid := (lo + hi) / 2
			if nbr[mid] >= c {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		cross += len(nbr) - lo
	}
	return cross
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// buildSubs constructs the per-shard internal-edge subgraphs and the cut
// edge list in one pass over the adjacency.
func (p *Plan) buildSubs(g *graph.Graph) error {
	for s, r := range p.Ranges {
		nLoc := r.Size()
		offsets := make([]int32, nLoc+1)
		internal := 0
		for v := r.Lo; v < r.Hi; v++ {
			for _, u := range g.Neighbors(v) {
				if u >= r.Lo && u < r.Hi {
					internal++
				} else if v < u {
					p.Boundary = append(p.Boundary, [2]int32{v, u})
				}
			}
			offsets[v-r.Lo+1] = int32(internal)
		}
		adj := make([]int32, internal)
		at := 0
		for v := r.Lo; v < r.Hi; v++ {
			for _, u := range g.Neighbors(v) {
				if u >= r.Lo && u < r.Hi {
					adj[at] = u - r.Lo
					at++
				}
			}
		}
		sub, err := graph.FromSortedCSR(offsets, adj)
		if err != nil {
			return fmt.Errorf("shard: subgraph %d: %w", s, err)
		}
		p.Subs[s] = sub
		p.Weights[s] = internal + nLoc
	}
	return nil
}

// Merge scatters per-shard colorings (local ids) back into one global
// coloring. parts must hold one slice per shard with exactly the shard's
// vertex count.
func (p *Plan) Merge(parts [][]int32) ([]int32, error) {
	if len(parts) != p.K {
		return nil, fmt.Errorf("shard: merge got %d parts, want %d", len(parts), p.K)
	}
	n := int(p.Ranges[p.K-1].Hi)
	colors := make([]int32, n)
	for s, part := range parts {
		r := p.Ranges[s]
		if len(part) != r.Size() {
			return nil, fmt.Errorf("shard: part %d has %d colors, want %d", s, len(part), r.Size())
		}
		copy(colors[r.Lo:r.Hi], part)
	}
	return colors, nil
}
