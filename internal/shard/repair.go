package shard

import (
	"errors"
	"fmt"

	"gcolor/internal/color"
	"gcolor/internal/graph"
)

// ErrRepairBudget reports that the boundary repair loop still had
// cross-shard conflicts after its round budget; the coloring is left in
// its partially repaired state. MergeRepair converts this into a CPU
// greedy fallback unless the caller opted out.
var ErrRepairBudget = errors.New("shard: boundary repair round budget exhausted")

// DefaultRepairRounds is the round budget used when the caller passes
// maxRounds <= 0. Each round recolors an independent set of the marked
// vertices, so the conflict count strictly decreases and rounds grow
// with the longest priority-decreasing chain in the conflict subgraph —
// a handful in practice; 16 is a generous ceiling.
const DefaultRepairRounds = 16

// RepairBoundary resolves cross-shard conflicts of a merged coloring in
// place, mirroring the GPU speculative-coloring kernels: each round
// detects monochromatic edges (the plan's cut edges, plus every edge
// incident to a vertex marked in the previous round, so conflicts a
// deferred vertex still carries are re-seen), marks the lower-priority
// endpoint of each with the same hash tie-break the kernels use, and
// first-fit recolors the marked vertices that are priority-minimal among
// their marked neighbours against a snapshot of the current coloring.
// That independent-set restriction is what makes the loop converge: two
// adjacent marked vertices recoloring against the same snapshot could
// pick the same color and oscillate for the whole budget (dense
// scale-free boundaries did exactly that), whereas a mover whose
// neighbours all hold still excludes every neighbouring color it can
// collide with — each round strictly reduces the conflict count.
// Per-shard colorings are internally proper by construction, so by
// induction every conflict a round can see involves a cut edge or a
// vertex marked in the previous round.
//
// It returns the rounds executed and total vertices recolored. If
// conflicts remain after maxRounds (<= 0 means DefaultRepairRounds) it
// returns ErrRepairBudget with the coloring partially repaired.
func RepairBoundary(g *graph.Graph, p *Plan, colors []int32, seed uint32, maxRounds int) (rounds, recolored int, err error) {
	n := g.NumVertices()
	if len(colors) != n {
		return 0, 0, fmt.Errorf("shard: repair got %d colors for %d vertices", len(colors), n)
	}
	if maxRounds <= 0 {
		maxRounds = DefaultRepairRounds
	}
	marked := make([]bool, n)
	var frontier []int32 // vertices marked in the previous round
	snapshot := make([]int32, n)
	// Rank-offset picks can skip up to deg available colors past the
	// usual deg+1 guarantee window, so the scratch covers both.
	scratch := make([]int32, 2*g.MaxDegree()+3)
	for i := range scratch {
		scratch[i] = -1
	}
	epoch := int32(0)
	prevBad := n + 1
	for {
		// Detect: cut edges always, plus edges incident to the previous
		// round's marked vertices (movers and deferred alike).
		var bad []int32
		mark := func(u, v int32) {
			w := v
			if color.PriorityGreater(color.Priority(u, seed), u, color.Priority(v, seed), v) {
				// u outranks v: v retries.
			} else {
				w = u
			}
			if !marked[w] {
				marked[w] = true
				bad = append(bad, w)
			}
		}
		for _, e := range p.Boundary {
			if colors[e[0]] == colors[e[1]] {
				mark(e[0], e[1])
			}
		}
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if colors[u] == colors[v] {
					mark(u, v)
				}
			}
		}
		if len(bad) == 0 {
			return rounds, recolored, nil
		}
		if rounds == maxRounds {
			return rounds, recolored, ErrRepairBudget
		}
		rounds++
		// Recolor against a snapshot, as the parallel kernel would. The
		// fast path moves every marked vertex, offsetting each first-fit
		// pick by the vertex's rank among its outranking marked neighbours:
		// a marked clique (a hub's boundary neighbourhood) gets distinct
		// ranks, picks distinct colors, and resolves in one round, where
		// plain snapshot first-fit oscillated for the whole budget. Ranks
		// only decorrelate — two equal-rank marked neighbours can still
		// collide — so any round that fails to shrink the conflict set
		// switches to the guaranteed mode: only vertices that are
		// priority-minimal among their marked neighbours move. Those form
		// an independent set, collide with nothing, and always include the
		// globally minimal marked vertex, so the conflict count strictly
		// decreases and the loop cannot stall.
		independent := len(bad) >= prevBad
		prevBad = len(bad)
		copy(snapshot, colors)
		for _, v := range bad {
			pv := color.Priority(v, seed)
			rank := 0
			defer_ := false
			for _, u := range g.Neighbors(v) {
				if marked[u] && color.PriorityGreater(color.Priority(u, seed), u, pv, v) {
					rank++
					if independent {
						// In guaranteed mode any outranking marked
						// neighbour defers v entirely.
						defer_ = true
						break
					}
				}
			}
			if defer_ {
				continue
			}
			if independent {
				rank = 0
			}
			colors[v] = firstFitSnapshot(g, v, snapshot, scratch, epoch, rank)
			epoch++
			recolored++
		}
		for _, v := range bad {
			marked[v] = false
		}
		frontier = bad
	}
}

// firstFitSnapshot returns the (skip+1)-th smallest color >= 0 absent
// from v's neighbourhood in snapshot, excluding v's own snapshot color so
// a marked vertex always moves off the contested color. skip spreads
// simultaneously recoloring marked neighbours across the palette.
func firstFitSnapshot(g *graph.Graph, v int32, snapshot, scratch []int32, epoch int32, skip int) int32 {
	nbr := g.Neighbors(v)
	// [0, deg+1] always holds one color free of nbr + self; each skipped
	// free color needs the window one wider.
	limit := int32(len(nbr)) + 2 + int32(skip)
	if m := int32(len(scratch)); limit > m {
		limit = m
	}
	if c := snapshot[v]; c >= 0 && c < limit {
		scratch[c] = epoch
	}
	for _, u := range nbr {
		if c := snapshot[u]; c >= 0 && c < limit {
			scratch[c] = epoch
		}
	}
	for c := int32(0); c < limit; c++ {
		if scratch[c] != epoch {
			if skip == 0 {
				return c
			}
			skip--
		}
	}
	// Reachable only with an undersized scratch; one past the largest
	// neighbour color is always free.
	max := snapshot[v]
	for _, u := range nbr {
		if snapshot[u] > max {
			max = snapshot[u]
		}
	}
	return max + 1
}

// RepairStats records what MergeRepair did to reconcile the shards.
type RepairStats struct {
	// Conflicts is the number of cut edges that were monochromatic in the
	// raw merged coloring, before any repair.
	Conflicts int
	// Rounds is the number of repair rounds executed.
	Rounds int
	// Recolored is the total number of vertex recolorings across rounds.
	Recolored int
	// Fallback reports that the repair budget blew (or the repaired
	// coloring failed verification) and the result came from the CPU
	// greedy fallback instead.
	Fallback bool
	// NumColors is the palette size of the returned coloring after
	// normalization.
	NumColors int
}

// MergeRepair merges per-shard colorings into one proper coloring of g:
// scatter the parts (Merge), run the bounded boundary repair loop, verify,
// and normalize the palette to a dense range. If the repair budget blows —
// or the input parts were not internally proper, which boundary repair
// cannot see — it falls back to a full CPU greedy coloring, unless
// noFallback is set, in which case the typed error surfaces. The returned
// coloring always verifies.
func MergeRepair(g *graph.Graph, p *Plan, parts [][]int32, seed uint32, maxRounds int, noFallback bool) ([]int32, RepairStats, error) {
	var st RepairStats
	colors, err := p.Merge(parts)
	if err != nil {
		return nil, st, err
	}
	for _, e := range p.Boundary {
		if colors[e[0]] == colors[e[1]] {
			st.Conflicts++
		}
	}
	rounds, recolored, err := RepairBoundary(g, p, colors, seed, maxRounds)
	st.Rounds, st.Recolored = rounds, recolored
	if err == nil {
		// Repair only inspects cut edges and recolored neighbourhoods; a
		// part with internal conflicts slips through, so verify the whole
		// coloring before trusting it.
		err = color.Verify(g, colors)
		if err != nil {
			err = fmt.Errorf("shard: merged coloring invalid after repair: %w", err)
		}
	}
	if err != nil {
		if noFallback {
			return nil, st, err
		}
		st.Fallback = true
		colors = color.Greedy(g, color.Natural, int64(seed))
	}
	st.NumColors = color.NormalizeColors(colors)
	return colors, st, nil
}
