package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"gcolor/internal/color"
	"gcolor/internal/exp"
	"gcolor/internal/gen"
	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

func triangle(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	return b.Build()
}

func testDevices(k int) []*simt.Device {
	devs := make([]*simt.Device, k)
	for i := range devs {
		d := simt.NewDevice()
		d.Workers = 1
		devs[i] = d
	}
	return devs
}

func TestPartitionInvariants(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":  gen.RMAT(10, 16, gen.Graph500, 1),
		"grid":  gen.Grid2D(32, 32),
		"gnm":   gen.GNM(500, 2000, 7),
		"tiny":  triangle(t),
		"lone":  gen.GNM(5, 0, 1),
	}
	for name, g := range graphs {
		for _, k := range []int{1, 2, 3, 4, 7} {
			for _, refine := range []bool{false, true} {
				p, err := Partition(g, k, refine)
				if err != nil {
					t.Fatalf("%s k=%d refine=%v: %v", name, k, refine, err)
				}
				wantK := k
				if wantK > g.NumVertices() {
					wantK = g.NumVertices()
				}
				if p.K != wantK {
					t.Fatalf("%s k=%d: plan.K = %d, want %d", name, k, p.K, wantK)
				}
				// Ranges are ordered, non-empty, and cover [0, n).
				at := int32(0)
				for s, r := range p.Ranges {
					if r.Lo != at || r.Hi <= r.Lo {
						t.Fatalf("%s k=%d shard %d: bad range [%d,%d) at %d", name, k, s, r.Lo, r.Hi, at)
					}
					at = r.Hi
					if p.Subs[s].NumVertices() != r.Size() {
						t.Fatalf("%s k=%d shard %d: sub has %d vertices, range %d", name, k, s, p.Subs[s].NumVertices(), r.Size())
					}
				}
				if int(at) != g.NumVertices() {
					t.Fatalf("%s k=%d: ranges cover %d of %d vertices", name, k, at, g.NumVertices())
				}
				// Every edge is internal to exactly one shard or on the
				// boundary list: arc counts must reconcile.
				internalArcs := 0
				for _, sub := range p.Subs {
					internalArcs += sub.NumArcs()
				}
				if internalArcs+2*len(p.Boundary) != g.NumArcs() {
					t.Fatalf("%s k=%d: %d internal arcs + 2*%d cuts != %d arcs",
						name, k, internalArcs, len(p.Boundary), g.NumArcs())
				}
				for _, e := range p.Boundary {
					if e[0] >= e[1] {
						t.Fatalf("%s k=%d: boundary edge %v not ordered", name, k, e)
					}
					if p.Shard(e[0]) == p.Shard(e[1]) {
						t.Fatalf("%s k=%d: boundary edge %v inside shard %d", name, k, e, p.Shard(e[0]))
					}
					if !g.HasEdge(e[0], e[1]) {
						t.Fatalf("%s k=%d: boundary edge %v not in graph", name, k, e)
					}
				}
				// Shard() agrees with the ranges.
				for s, r := range p.Ranges {
					if p.Shard(r.Lo) != s || p.Shard(r.Hi-1) != s {
						t.Fatalf("%s k=%d: Shard lookup disagrees with range %d", name, k, s)
					}
				}
			}
		}
	}
}

func TestPartitionRejectsBadInput(t *testing.T) {
	g := gen.Grid2D(4, 4)
	if _, err := Partition(g, 0, false); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Partition(g, -3, true); err == nil {
		t.Fatal("k=-3 accepted")
	}
	empty := graph.NewBuilder(0).Build()
	if _, err := Partition(empty, 2, false); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestPartitionBalance(t *testing.T) {
	// Work weights must be within a modest factor of ideal on a graph
	// large enough to split cleanly.
	g := gen.RMAT(12, 16, gen.Graph500, 1)
	for _, k := range []int{2, 4} {
		p, err := Partition(g, k, true)
		if err != nil {
			t.Fatal(err)
		}
		ideal := (g.NumArcs() + g.NumVertices()) / k
		for s, w := range p.Weights {
			if w > 2*ideal {
				t.Errorf("k=%d shard %d: weight %d > 2x ideal %d", k, s, w, ideal)
			}
		}
	}
}

func TestMergeRejectsBadParts(t *testing.T) {
	g := gen.Grid2D(8, 8)
	p, err := Partition(g, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Merge([][]int32{make([]int32, p.Ranges[0].Size())}); err == nil {
		t.Fatal("wrong part count accepted")
	}
	if _, err := p.Merge([][]int32{make([]int32, 1), make([]int32, p.Ranges[1].Size())}); err == nil {
		t.Fatal("wrong part length accepted")
	}
}

func TestRepairBoundaryFixesCuts(t *testing.T) {
	// A path colored 0,1,0,1,... in both halves conflicts exactly at the
	// cut when the halves are merged with clashing parities.
	g := gen.Grid2D(1, 64)
	p, err := Partition(g, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]int32, 2)
	for s, r := range p.Ranges {
		part := make([]int32, r.Size())
		for i := range part {
			part[i] = int32(i % 2)
		}
		parts[s] = part
	}
	colors, st, err := MergeRepair(g, p, parts, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := color.Verify(g, colors); err != nil {
		t.Fatalf("repaired coloring invalid: %v", err)
	}
	if st.Fallback {
		t.Fatal("trivial boundary conflict fell back to greedy")
	}
	if st.Recolored == 0 && st.Conflicts > 0 {
		t.Fatal("conflicts reported but nothing recolored")
	}
}

func TestRepairBudgetExhaustion(t *testing.T) {
	// A triangle split into three singleton shards, all colored 0,
	// converges in one round: both low-priority endpoints are marked,
	// carry distinct ranks among their marked neighbours, and the
	// rank-offset first-fit hands them distinct colors from the same
	// snapshot.
	g := triangle(t)
	p, err := Partition(g, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	parts := [][]int32{{0}, {0}, {0}}
	colors, st, err := MergeRepair(g, p, parts, 1, 0, true)
	if err != nil {
		t.Fatalf("triangle: %v", err)
	}
	if err := color.Verify(g, colors); err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 1 {
		t.Fatalf("triangle rounds = %d, want 1", st.Rounds)
	}

	// Budget exhaustion needs second-order conflicts (equal-rank marked
	// neighbours colliding): correlated per-shard greedy colorings of a
	// scale-free graph — every shard leans on color 0 the same way —
	// deterministically take more than one round.
	g = gen.RMAT(10, 8, gen.Graph500, 1)
	p, err = Partition(g, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	multi := make([][]int32, p.K)
	for i, sub := range p.Subs {
		multi[i] = color.Greedy(sub, color.Natural, 0)
	}
	colors, st, err = MergeRepair(g, p, multi, 1, 0, true)
	if err != nil {
		t.Fatalf("default budget: %v", err)
	}
	if err := color.Verify(g, colors); err != nil {
		t.Fatal(err)
	}
	if st.Rounds < 2 {
		t.Fatalf("rounds = %d, want >= 2 (case too easy to exhaust a 1-round budget)", st.Rounds)
	}

	// maxRounds=1 with noFallback surfaces the typed error: round one is
	// identical to the full run above, which needed more rounds.
	if _, _, err := MergeRepair(g, p, multi, 1, 1, true); !errors.Is(err, ErrRepairBudget) {
		t.Fatalf("err = %v, want ErrRepairBudget", err)
	}

	// maxRounds=1 with fallback still yields a verified coloring.
	colors, st, err = MergeRepair(g, p, multi, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Fallback {
		t.Fatal("expected greedy fallback")
	}
	if err := color.Verify(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRepairRejectsInternallyBrokenParts(t *testing.T) {
	// Boundary repair cannot see conflicts internal to a shard; MergeRepair
	// must catch them at verification and fall back (or error).
	g := gen.Grid2D(4, 4)
	p, err := Partition(g, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]int32, 2)
	for s, r := range p.Ranges {
		parts[s] = make([]int32, r.Size()) // all zero: internally improper
	}
	if _, _, err := MergeRepair(g, p, parts, 1, 0, true); err == nil {
		t.Fatal("internally broken parts accepted with noFallback")
	}
	colors, st, err := MergeRepair(g, p, parts, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Fallback {
		t.Fatal("expected fallback for internally broken parts")
	}
	if err := color.Verify(g, colors); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMatchesSingleDevice is the cross-shard correctness property:
// for every seed dataset and K in {2,3,4}, the K-shard coloring is
// conflict-free and within a bounded color-count factor of the
// single-device run.
func TestShardedMatchesSingleDevice(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded property sweep is not short")
	}
	ctx := context.Background()
	for _, ds := range exp.Datasets() {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			t.Parallel()
			g := ds.Build(exp.Small)
			dev := simt.NewDevice()
			dev.Workers = 1
			single, err := gpucolor.ColorContext(ctx, dev, g, gpucolor.AlgHybrid, gpucolor.ResilientOptions{})
			if err != nil {
				t.Fatalf("single-device: %v", err)
			}
			for _, k := range []int{2, 3, 4} {
				res, err := ColorDevices(ctx, testDevices(k), g, gpucolor.AlgHybrid,
					Options{K: k, Seed: 1}, gpucolor.ResilientOptions{})
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if err := color.Verify(g, res.Colors); err != nil {
					t.Fatalf("k=%d: sharded coloring invalid: %v", k, err)
				}
				if limit := single.NumColors*13/10 + 1; res.NumColors > limit {
					t.Errorf("k=%d: %d colors vs single-device %d (limit %d)",
						k, res.NumColors, single.NumColors, limit)
				}
				if res.Repair.Fallback {
					t.Errorf("k=%d: repair fell back to greedy", k)
				}
			}
		})
	}
}

// TestShardedDeterministic pins that the same inputs reproduce the same
// coloring bit for bit, concurrency notwithstanding.
func TestShardedDeterministic(t *testing.T) {
	ctx := context.Background()
	g := gen.RMAT(10, 8, gen.Graph500, 3)
	run := func() []int32 {
		res, err := ColorDevices(ctx, testDevices(3), g, gcAlg(), Options{K: 3, Seed: 5}, gpucolor.ResilientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Colors
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vertex %d: %d vs %d across runs", i, a[i], b[i])
		}
	}
}

func gcAlg() gpucolor.Algorithm { return gpucolor.AlgBaseline }

// TestShardedUnderFault arms a fault injector on one of the devices and
// asserts the sharded run still completes with a verified coloring — the
// per-shard resilient ladder absorbs the faults.
func TestShardedUnderFault(t *testing.T) {
	ctx := context.Background()
	g := gen.RMAT(10, 8, gen.Graph500, 2)
	devs := testDevices(3)
	devs[1].Fault = simt.NewFaultInjector(42, 0.02)
	res, err := ColorDevices(ctx, devs, g, gpucolor.AlgBaseline, Options{K: 3, Seed: 1}, gpucolor.ResilientOptions{})
	if err != nil {
		t.Fatalf("sharded run under fault: %v", err)
	}
	if err := color.Verify(g, res.Colors); err != nil {
		t.Fatalf("coloring under fault invalid: %v", err)
	}
}

// TestColorShardedPropagatesErrors pins that a failing shard cancels the
// rest and surfaces a wrapped error naming the shard.
func TestColorShardedPropagatesErrors(t *testing.T) {
	g := gen.Grid2D(16, 16)
	boom := fmt.Errorf("kernel exploded")
	_, err := ColorSharded(context.Background(), g, Options{K: 4, Seed: 1},
		func(ctx context.Context, i int, sub *graph.Graph) ([]int32, int64, error) {
			if i == 2 {
				return nil, 0, boom
			}
			<-ctx.Done() // the failure must cancel the siblings
			return nil, 0, ctx.Err()
		})
	if !errors.Is(err, boom) && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want shard failure or cancellation", err)
	}
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestColorDevicesNeedsDevices(t *testing.T) {
	g := gen.Grid2D(4, 4)
	if _, err := ColorDevices(context.Background(), nil, g, gpucolor.AlgBaseline, Options{K: 2}, gpucolor.ResilientOptions{}); err == nil {
		t.Fatal("nil device list accepted")
	}
}
