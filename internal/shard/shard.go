// Package shard partitions a CSR graph into K edge-balanced shards,
// colors the shards independently — in parallel, on separate devices —
// and reconciles the per-shard colorings with a bounded boundary repair
// loop. It lifts the paper's load-imbalance lesson one level up: just as
// hub vertices serialize wavefronts inside a device, a whole graph on one
// device serializes the fleet, so shards are balanced by work (arcs), not
// vertices, following the partitioned-coloring shape of Bogle et al.
// (arXiv:2107.00075) and the work-balanced splitting of Raval et al.
// (arXiv:1711.00231).
package shard

import (
	"context"
	"fmt"
	"sync"

	"gcolor/internal/graph"
	"gcolor/internal/gpucolor"
	"gcolor/internal/simt"
)

// Options configures a sharded coloring run.
type Options struct {
	// K is the number of shards; Partition clamps it to the vertex count.
	// K <= 0 is an error.
	K int
	// NoRefine disables the boundary-sweep cut refinement, leaving the
	// purely weight-balanced cuts.
	NoRefine bool
	// Seed feeds the per-shard coloring seeds (shard i runs with
	// Seed + i so shards do not correlate) and the repair priority hash.
	Seed uint32
	// MaxRepairRounds bounds the boundary repair loop; <= 0 means
	// DefaultRepairRounds.
	MaxRepairRounds int
	// NoFallback disables the CPU greedy fallback when the repair budget
	// blows; the typed ErrRepairBudget surfaces instead.
	NoFallback bool
}

// Result is the outcome of a sharded run: the verified global coloring
// plus the partition and repair evidence.
type Result struct {
	// Colors is the proper global coloring; NumColors its palette size.
	Colors    []int32
	NumColors int
	// K is the shard count actually used; CutEdges the number of
	// cross-shard edges the partition produced.
	K        int
	CutEdges int
	// Repair records the boundary reconciliation work.
	Repair RepairStats
	// Cycles is the maximum simulated cycles over the shards — the
	// parallel makespan; CyclesTotal the sum — the serial-equivalent
	// work. ShardCycles breaks it down per shard.
	Cycles      int64
	CyclesTotal int64
	ShardCycles []int64
}

// ColorFunc colors one shard's subgraph (local vertex ids) and returns
// the coloring plus the simulated cycles spent. ColorSharded calls it
// once per shard, concurrently.
type ColorFunc func(ctx context.Context, shard int, sub *graph.Graph) ([]int32, int64, error)

// ColorSharded partitions g into opt.K shards, colors every shard
// concurrently through fn, and reconciles the parts with MergeRepair.
// The first shard error cancels the remaining shards and is returned
// wrapped with its shard index. The returned coloring always verifies.
func ColorSharded(ctx context.Context, g *graph.Graph, opt Options, fn ColorFunc) (*Result, error) {
	plan, err := Partition(g, opt.K, !opt.NoRefine)
	if err != nil {
		return nil, err
	}
	parts := make([][]int32, plan.K)
	cycles := make([]int64, plan.K)
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, plan.K)
	var wg sync.WaitGroup
	for i := 0; i < plan.K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			colors, cyc, err := fn(sctx, i, plan.Subs[i])
			if err != nil {
				errs[i] = fmt.Errorf("shard %d/%d: %w", i, plan.K, err)
				cancel()
				return
			}
			parts[i], cycles[i] = colors, cyc
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return finish(g, plan, parts, cycles, opt)
}

func finish(g *graph.Graph, plan *Plan, parts [][]int32, cycles []int64, opt Options) (*Result, error) {
	colors, st, err := MergeRepair(g, plan, parts, opt.Seed, opt.MaxRepairRounds, opt.NoFallback)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Colors:      colors,
		NumColors:   st.NumColors,
		K:           plan.K,
		CutEdges:    plan.CutEdges(),
		Repair:      st,
		ShardCycles: cycles,
	}
	for _, c := range cycles {
		res.CyclesTotal += c
		if c > res.Cycles {
			res.Cycles = c
		}
	}
	return res, nil
}

// ColorDevices colors g sharded across devs — shard i on
// devs[i % len(devs)] — through the resilient ladder (validate, repair,
// retry, CPU fallback per shard). ropt.Seed is overridden per shard with
// opt.Seed + i. With opt.K == 0 it defaults to len(devs).
func ColorDevices(ctx context.Context, devs []*simt.Device, g *graph.Graph, a gpucolor.Algorithm, opt Options, ropt gpucolor.ResilientOptions) (*Result, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("shard: no devices")
	}
	if opt.K == 0 {
		opt.K = len(devs)
	}
	return ColorSharded(ctx, g, opt, func(ctx context.Context, i int, sub *graph.Graph) ([]int32, int64, error) {
		o := ropt
		o.Seed = opt.Seed + uint32(i)
		out, err := gpucolor.ColorContext(ctx, devs[i%len(devs)], sub, a, o)
		if err != nil {
			return nil, 0, err
		}
		return out.Colors, out.Cycles, nil
	})
}
