package gpuapps

import (
	"math"
	"testing"
	"testing/quick"

	"gcolor/internal/gen"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

func testDev() *simt.Device {
	d := simt.NewDevice()
	d.NumCUs = 4
	d.WavefrontWidth = 16
	d.WorkgroupSize = 64
	return d
}

func TestBFSMatchesCPU(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path":  gen.Path(50),
		"grid":  gen.Grid2D(12, 13),
		"rmat":  gen.RMAT(9, 8, gen.Graph500, 2),
		"gnm":   gen.GNM(400, 1600, 3),
		"disco": gen.GNM(200, 100, 4), // likely disconnected
	}
	for name, g := range graphs {
		res, err := BFS(testDev(), g, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := BFSCPU(g, 0)
		for v := range want {
			if res.Levels[v] != want[v] {
				t.Errorf("%s: level[%d] = %d, want %d", name, v, res.Levels[v], want[v])
				break
			}
		}
		if res.Stats.Cycles <= 0 {
			t.Errorf("%s: no cycles recorded", name)
		}
	}
}

func TestBFSFrontierProfile(t *testing.T) {
	g := gen.Path(10)
	res, err := BFS(testDev(), g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Path from one end: 10 levels of frontier size 1... the last frontier
	// (vertex 9) still runs one expand that finds nothing.
	if len(res.FrontierSizes) != 10 {
		t.Errorf("frontier profile %v, want 10 levels", res.FrontierSizes)
	}
	for i, s := range res.FrontierSizes {
		if s != 1 {
			t.Errorf("level %d frontier = %d, want 1", i, s)
		}
	}
}

func TestBFSBadSource(t *testing.T) {
	if _, err := BFS(testDev(), gen.Path(5), 5); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := BFS(testDev(), gen.Path(5), -1); err == nil {
		t.Error("negative source accepted")
	}
}

func TestBFSHybridMatchesBFS(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"rmat": gen.RMAT(10, 16, gen.Graph500, 2),
		"grid": gen.Grid2D(15, 15),
		"star": gen.Star(300),
	} {
		base, err := BFS(testDev(), g, 0)
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := BFSHybrid(testDev(), g, 0, 32)
		if err != nil {
			t.Fatal(err)
		}
		for v := range base.Levels {
			if base.Levels[v] != hyb.Levels[v] {
				t.Errorf("%s: level[%d] = %d vs %d", name, v, hyb.Levels[v], base.Levels[v])
				break
			}
		}
		if len(hyb.FrontierSizes) != len(base.FrontierSizes) {
			t.Errorf("%s: frontier profiles differ", name)
		}
	}
}

func TestBFSHybridFasterOnHubFrontiers(t *testing.T) {
	// A star's level-1 expansion is a single degree-(n-1) vertex: the
	// baseline serializes one lane over all leaves, the hybrid spreads it
	// over a workgroup.
	g := gen.Star(5000)
	dev := simt.NewDevice()
	base, err := BFS(dev, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := BFSHybrid(simt.NewDevice(), g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hyb.Stats.Cycles >= base.Stats.Cycles {
		t.Errorf("hybrid BFS %d cycles >= baseline %d on a star", hyb.Stats.Cycles, base.Stats.Cycles)
	}
}

func TestBFSHybridBadSource(t *testing.T) {
	if _, err := BFSHybrid(testDev(), gen.Path(5), 9, 0); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestPageRankMatchesCPU(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"star": gen.Star(50),
		"rmat": gen.RMAT(8, 8, gen.Graph500, 5),
		"grid": gen.Grid2D(10, 10),
	} {
		res := PageRank(testDev(), g, PageRankOptions{})
		want := PageRankCPU(g, PageRankOptions{})
		for v := range want {
			if math.Abs(float64(res.Ranks[v])-want[v]) > 1e-3 {
				t.Errorf("%s: rank[%d] = %v, want %v", name, v, res.Ranks[v], want[v])
				break
			}
		}
		// Ranks are a distribution.
		var sum float64
		for _, r := range res.Ranks {
			sum += float64(r)
		}
		if math.Abs(sum-1) > 1e-2 {
			t.Errorf("%s: ranks sum to %v, want ~1", name, sum)
		}
	}
}

func TestPageRankStarShape(t *testing.T) {
	g := gen.Star(100)
	res := PageRank(testDev(), g, PageRankOptions{})
	hub, leaf := res.Ranks[0], res.Ranks[1]
	if hub <= 10*leaf {
		t.Errorf("hub rank %v not dominating leaf rank %v", hub, leaf)
	}
	for v := 2; v < 100; v++ {
		if math.Abs(float64(res.Ranks[v]-leaf)) > 1e-6 {
			t.Errorf("leaves should have equal rank: %v vs %v", res.Ranks[v], leaf)
			break
		}
	}
}

func TestPageRankEmptyAndIsolated(t *testing.T) {
	empty := PageRank(testDev(), graph.FromEdges(0, nil), PageRankOptions{})
	if len(empty.Ranks) != 0 {
		t.Error("empty graph produced ranks")
	}
	iso := PageRank(testDev(), graph.FromEdges(4, nil), PageRankOptions{})
	for _, r := range iso.Ranks {
		if math.Abs(float64(r)-0.25) > 1e-5 {
			t.Errorf("isolated ranks = %v, want uniform 0.25", iso.Ranks)
			break
		}
	}
}

func TestConnectedComponentsMatchesCPU(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"two-paths": graph.FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}}),
		"gnm":       gen.GNM(300, 400, 7),
		"grid":      gen.Grid2D(9, 9),
		"isolated":  graph.FromEdges(5, nil),
	} {
		res := ConnectedComponents(testDev(), g)
		want := ConnectedComponentsCPU(g)
		for v := range want {
			if res.Labels[v] != want[v] {
				t.Errorf("%s: label[%d] = %d, want %d", name, v, res.Labels[v], want[v])
				break
			}
		}
	}
}

func TestConnectedComponentsCounts(t *testing.T) {
	g := graph.FromEdges(7, [][2]int32{{0, 1}, {2, 3}, {3, 4}})
	res := ConnectedComponents(testDev(), g)
	if res.NumComponents != 4 { // {0,1}, {2,3,4}, {5}, {6}
		t.Errorf("NumComponents = %d, want 4", res.NumComponents)
	}
}

func TestStatsEvidence(t *testing.T) {
	g := gen.RMAT(9, 8, gen.Graph500, 1)
	res, err := BFS(testDev(), g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u := res.Stats.SIMDUtilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
	if imb := res.Stats.WavefrontImbalance(); imb < 1 {
		t.Errorf("wavefront imbalance = %v, want >= 1", imb)
	}
	var sum int64
	for _, c := range res.Stats.KernelCycles {
		sum += c
	}
	if sum != res.Stats.Cycles {
		t.Errorf("kernel cycles %d != total %d", sum, res.Stats.Cycles)
	}
}

// Property: GPU results equal CPU references on arbitrary graphs.
func TestAppsMatchCPUProperty(t *testing.T) {
	dev := testDev()
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%60 + 2
		g := gen.GNM(n, 3*n, seed)
		bfs, err := BFS(dev, g, 0)
		if err != nil {
			return false
		}
		wantL := BFSCPU(g, 0)
		for v := range wantL {
			if bfs.Levels[v] != wantL[v] {
				return false
			}
		}
		cc := ConnectedComponents(dev, g)
		wantC := ConnectedComponentsCPU(g)
		for v := range wantC {
			if cc.Labels[v] != wantC[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
