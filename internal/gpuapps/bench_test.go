package gpuapps

import (
	"testing"

	"gcolor/internal/gen"
	"gcolor/internal/simt"
)

func BenchmarkBFS(b *testing.B) {
	g := gen.RMAT(12, 16, gen.Graph500, 1)
	for i := 0; i < b.N; i++ {
		if _, err := BFS(simt.NewDevice(), g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFSHybrid(b *testing.B) {
	g := gen.RMAT(12, 16, gen.Graph500, 1)
	for i := 0; i < b.N; i++ {
		if _, err := BFSHybrid(simt.NewDevice(), g, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRank(b *testing.B) {
	g := gen.RMAT(11, 16, gen.Graph500, 1)
	for i := 0; i < b.N; i++ {
		PageRank(simt.NewDevice(), g, PageRankOptions{MaxIters: 20})
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := gen.RMAT(12, 16, gen.Graph500, 1)
	for i := 0; i < b.N; i++ {
		ConnectedComponents(simt.NewDevice(), g)
	}
}
