package gpuapps

import (
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// CCResult holds the component labeling and run evidence.
type CCResult struct {
	// Labels[v] is the minimum vertex id of v's connected component.
	Labels        []int32
	NumComponents int
	Stats         *Stats
}

// ConnectedComponents runs two-phase label propagation on the simulated
// GPU: each vertex repeatedly takes the minimum label in its closed
// neighbourhood until a fixpoint. Convergence takes O(diameter) rounds —
// fast on scale-free graphs, slow on meshes — the complementary behaviour
// to the coloring kernels.
func ConnectedComponents(dev *simt.Device, g *graph.Graph) *CCResult {
	n := g.NumVertices()
	res := &CCResult{Stats: newStats(dev)}
	b := bindCSR(dev, g)
	labels := dev.AllocInt32(n)
	next := dev.AllocInt32(n)
	changed := dev.AllocInt32(1)
	for v := 0; v < n; v++ {
		labels.Data()[v] = int32(v)
	}
	for {
		res.Stats.Iterations++
		changed.Data()[0] = 0
		rr := dev.Run("cc-propagate", n, func(c *simt.Ctx) {
			v := c.Global
			orig := c.Ld(labels, v)
			m := orig
			start := c.Ld(b.off, v)
			end := c.Ld(b.off, v+1)
			for e := start; e < end; e++ {
				lu := c.Ld(labels, c.Ld(b.adj, e))
				c.Op(1)
				if lu < m {
					m = lu
				}
			}
			c.St(next, v, m)
			if m != orig {
				c.AtomicStore(changed, 0, 1)
			}
		})
		res.Stats.charge(rr, true)
		labels, next = next, labels
		if changed.Data()[0] == 0 {
			break
		}
	}
	res.Labels = labels.Data()
	seen := map[int32]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	res.NumComponents = len(seen)
	return res
}

// ConnectedComponentsCPU is the union-find reference; it returns labels
// normalized to each component's minimum vertex id.
func ConnectedComponentsCPU(g *graph.Graph) []int32 {
	n := g.NumVertices()
	parent := make([]int32, n)
	for v := range parent {
		parent[v] = int32(v)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			rv, ru := find(int32(v)), find(u)
			if rv != ru {
				if rv < ru {
					parent[ru] = rv
				} else {
					parent[rv] = ru
				}
			}
		}
	}
	// Normalize to component minima. Union-by-min above already makes every
	// root the minimum of its component; flatten.
	labels := make([]int32, n)
	for v := 0; v < n; v++ {
		labels[v] = find(int32(v))
	}
	return labels
}
