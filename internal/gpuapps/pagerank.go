package gpuapps

import (
	"math"

	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// PageRankResult holds the converged ranks and run evidence.
type PageRankResult struct {
	Ranks []float32
	Stats *Stats
}

// PageRankOptions configures the solver.
type PageRankOptions struct {
	Damping   float64 // default 0.85
	Tolerance float64 // L1 convergence threshold; default 1e-4
	MaxIters  int     // default 100
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-4
	}
	if o.MaxIters == 0 {
		o.MaxIters = 100
	}
	return o
}

// PageRank runs pull-style topology-driven PageRank on the simulated GPU:
// per iteration, a contribution kernel divides each rank by its degree and
// a gather kernel sums each vertex's neighbour contributions — a full CSR
// scan per vertex per iteration, the same access pattern the paper's
// coloring kernels stress. Isolated vertices' mass is redistributed
// uniformly (the dangling-node correction), computed host-side between
// launches. Convergence (L1 delta) is also evaluated host-side, standing in
// for a device reduction.
func PageRank(dev *simt.Device, g *graph.Graph, opt PageRankOptions) *PageRankResult {
	opt = opt.withDefaults()
	n := g.NumVertices()
	res := &PageRankResult{Stats: newStats(dev)}
	if n == 0 {
		return res
	}
	b := bindCSR(dev, g)
	rank := dev.AllocFloat32(n)
	contrib := dev.AllocFloat32(n)
	newRank := dev.AllocFloat32(n)
	rank.Fill(float32(1.0 / float64(n)))

	d := float32(opt.Damping)
	for iter := 0; iter < opt.MaxIters; iter++ {
		res.Stats.Iterations++
		// Dangling mass: ranks of degree-0 vertices spread uniformly.
		var dangling float64
		for v := 0; v < n; v++ {
			if g.Degree(int32(v)) == 0 {
				dangling += float64(rank.Data()[v])
			}
		}
		base := float32((1-opt.Damping)/float64(n) + opt.Damping*dangling/float64(n))

		rr := dev.Run("pr-contrib", n, func(c *simt.Ctx) {
			deg := c.Ld(b.off, c.Global+1) - c.Ld(b.off, c.Global)
			r := c.LdF(rank, c.Global)
			c.Op(1)
			if deg > 0 {
				c.StF(contrib, c.Global, r/float32(deg))
			}
		})
		res.Stats.charge(rr, false)

		rr = dev.Run("pr-gather", n, func(c *simt.Ctx) {
			start := c.Ld(b.off, c.Global)
			end := c.Ld(b.off, c.Global+1)
			sum := float32(0)
			for e := start; e < end; e++ {
				u := c.Ld(b.adj, e)
				sum += c.LdF(contrib, u)
				c.Op(1)
			}
			c.Op(2)
			c.StF(newRank, c.Global, base+d*sum)
		})
		res.Stats.charge(rr, true)

		// Host-side L1 delta (stand-in for a device reduction).
		var delta float64
		for v := 0; v < n; v++ {
			delta += math.Abs(float64(newRank.Data()[v] - rank.Data()[v]))
		}
		rank, newRank = newRank, rank
		if delta < opt.Tolerance {
			break
		}
	}
	res.Ranks = rank.Data()
	return res
}

// PageRankCPU is the sequential reference (same algorithm, float64).
func PageRankCPU(g *graph.Graph, opt PageRankOptions) []float64 {
	opt = opt.withDefaults()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1.0 / float64(n)
	}
	for iter := 0; iter < opt.MaxIters; iter++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if g.Degree(int32(v)) == 0 {
				dangling += rank[v]
			}
		}
		base := (1-opt.Damping)/float64(n) + opt.Damping*dangling/float64(n)
		var delta float64
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.Neighbors(int32(v)) {
				sum += rank[u] / float64(g.Degree(u))
			}
			next[v] = base + opt.Damping*sum
			delta += math.Abs(next[v] - rank[v])
		}
		rank, next = next, rank
		if delta < opt.Tolerance {
			break
		}
	}
	return rank
}
