package gpuapps

import (
	"fmt"

	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// BFSResult holds the outcome of a breadth-first search.
type BFSResult struct {
	// Levels[v] is the hop distance from the source, or -1 if unreachable.
	Levels []int32
	// FrontierSizes records the frontier per level.
	FrontierSizes []int
	Stats         *Stats
}

// BFS runs a level-synchronous breadth-first search from src on the
// simulated GPU: one expand kernel per level, thread per frontier vertex,
// visitation claimed with compare-and-swap. The expand kernel's full
// neighbour scans make it the classic load-imbalance twin of the coloring
// candidate kernel.
func BFS(dev *simt.Device, g *graph.Graph, src int32) (*BFSResult, error) {
	n := g.NumVertices()
	if src < 0 || int(src) >= n {
		return nil, fmt.Errorf("gpuapps: BFS source %d out of range [0,%d)", src, n)
	}
	b := bindCSR(dev, g)
	levels := dev.AllocInt32(n)
	levels.Fill(-1)
	levels.Data()[src] = 0
	cur := dev.AllocInt32(n)
	next := dev.AllocInt32(n)
	cnt := dev.AllocInt32(1)
	cur.Data()[0] = src

	res := &BFSResult{Stats: newStats(dev)}
	count := 1
	for level := int32(0); count > 0; level++ {
		res.FrontierSizes = append(res.FrontierSizes, count)
		res.Stats.Iterations++
		cnt.Data()[0] = 0
		rr := dev.Run("bfs-expand", count, func(c *simt.Ctx) {
			v := c.Ld(cur, c.Global)
			start := c.Ld(b.off, v)
			end := c.Ld(b.off, v+1)
			for e := start; e < end; e++ {
				u := c.Ld(b.adj, e)
				c.Op(1)
				if c.AtomicCAS(levels, u, -1, level+1) == -1 {
					slot := c.AtomicAdd(cnt, 0, 1)
					c.St(next, slot, u)
				}
			}
		})
		res.Stats.charge(rr, true)
		count = int(cnt.Data()[0])
		sortWorklist(next, count)
		cur, next = next, cur
	}
	res.Levels = levels.Data()
	return res, nil
}

// BFSHybrid is BFS with the paper's hybrid technique applied to the expand
// phase: frontier vertices with degree at or above the threshold are each
// expanded by a whole workgroup (coalesced cooperative neighbour scan), the
// rest thread-per-vertex — removing the hub-lane serialization exactly as
// in the coloring kernels. threshold <= 0 means the device's wavefront
// width. Levels are identical to BFS's.
func BFSHybrid(dev *simt.Device, g *graph.Graph, src int32, threshold int32) (*BFSResult, error) {
	n := g.NumVertices()
	if src < 0 || int(src) >= n {
		return nil, fmt.Errorf("gpuapps: BFS source %d out of range [0,%d)", src, n)
	}
	if threshold <= 0 {
		threshold = int32(dev.WavefrontWidth)
	}
	// Host-side short-circuit, as in gpucolor.Hybrid: when no vertex can
	// cross the threshold, the per-level partition pass would be pure
	// overhead.
	if int32(g.MaxDegree()) < threshold {
		return BFS(dev, g, src)
	}
	b := bindCSR(dev, g)
	levels := dev.AllocInt32(n)
	levels.Fill(-1)
	levels.Data()[src] = 0
	cur := dev.AllocInt32(n)
	next := dev.AllocInt32(n)
	small := dev.AllocInt32(n)
	big := dev.AllocInt32(n)
	cnt := dev.AllocInt32(3) // [0] next, [1] small, [2] big
	cur.Data()[0] = src

	res := &BFSResult{Stats: newStats(dev)}
	count := 1
	for level := int32(0); count > 0; level++ {
		res.FrontierSizes = append(res.FrontierSizes, count)
		res.Stats.Iterations++

		// Split the frontier by degree.
		cnt.Data()[1], cnt.Data()[2] = 0, 0
		rr := dev.Run("bfs-partition", count, func(c *simt.Ctx) {
			v := c.Ld(cur, c.Global)
			deg := c.Ld(b.off, v+1) - c.Ld(b.off, v)
			c.Op(2)
			if deg >= threshold {
				slot := c.AtomicAdd(cnt, 2, 1)
				c.St(big, slot, v)
			} else {
				slot := c.AtomicAdd(cnt, 1, 1)
				c.St(small, slot, v)
			}
		})
		res.Stats.charge(rr, false)
		nSmall, nBig := int(cnt.Data()[1]), int(cnt.Data()[2])
		sortWorklist(small, nSmall)
		sortWorklist(big, nBig)

		cnt.Data()[0] = 0
		if nSmall > 0 {
			rr = dev.Run("bfs-expand-small", nSmall, func(c *simt.Ctx) {
				v := c.Ld(small, c.Global)
				start := c.Ld(b.off, v)
				end := c.Ld(b.off, v+1)
				for e := start; e < end; e++ {
					u := c.Ld(b.adj, e)
					c.Op(1)
					if c.AtomicCAS(levels, u, -1, level+1) == -1 {
						slot := c.AtomicAdd(cnt, 0, 1)
						c.St(next, slot, u)
					}
				}
			})
			res.Stats.charge(rr, true)
		}
		if nBig > 0 {
			rr = dev.RunCoop("bfs-expand-big", nBig, func(g *simt.GroupCtx) {
				lds := g.AllocLDS(3)
				g.One(func(c *simt.Ctx) {
					v := c.Ld(big, g.ID())
					c.LdsSt(lds, 0, v)
					c.LdsSt(lds, 1, c.Ld(b.off, v))
					c.LdsSt(lds, 2, c.Ld(b.off, v+1))
				})
				g.Barrier()
				var start, end int32
				g.ForEach(int32(g.Size()), func(c *simt.Ctx, i int32) {
					start = c.LdsLd(lds, 1)
					end = c.LdsLd(lds, 2)
				})
				g.ForEach(end-start, func(c *simt.Ctx, i int32) {
					u := c.Ld(b.adj, start+i)
					c.Op(1)
					if c.AtomicCAS(levels, u, -1, level+1) == -1 {
						slot := c.AtomicAdd(cnt, 0, 1)
						c.St(next, slot, u)
					}
				})
			})
			res.Stats.charge(rr, true)
		}
		count = int(cnt.Data()[0])
		sortWorklist(next, count)
		cur, next = next, cur
	}
	res.Levels = levels.Data()
	return res, nil
}

// BFSCPU is the sequential reference.
func BFSCPU(g *graph.Graph, src int32) []int32 {
	n := g.NumVertices()
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = -1
	}
	if n == 0 {
		return levels
	}
	levels[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if levels[u] == -1 {
				levels[u] = levels[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return levels
}
