// Package gpuapps implements the companion irregular graph workloads the
// paper's framing motivates — BFS, PageRank, and connected components — on
// the same SIMT simulator as the coloring kernels. They share the
// thread-per-vertex CSR-scan structure, so the load-imbalance behaviour
// characterized for coloring (hub lanes serializing wavefronts, hub-dense
// id ranges overloading compute units) reappears here; experiment X2
// measures it across all of them.
package gpuapps

import (
	"slices"

	"gcolor/internal/graph"
	"gcolor/internal/metrics"
	"gcolor/internal/simt"
)

// Stats aggregates the simulated evidence of one app run.
type Stats struct {
	Cycles        int64
	Iterations    int
	KernelCycles  map[string]int64
	WavefrontWork []int64
	Steals        int64

	busySum, busyMaxSum int64
	width               int
}

// SIMDUtilization returns the aggregate lane occupancy of the run.
func (s *Stats) SIMDUtilization() float64 {
	if s.busyMaxSum == 0 {
		return 0
	}
	return float64(s.busySum) / float64(int64(s.width)*s.busyMaxSum)
}

// WavefrontImbalance returns max/mean over the recorded per-wavefront work.
func (s *Stats) WavefrontImbalance() float64 {
	return metrics.SummarizeInt64(s.WavefrontWork).MaxOverMean
}

func newStats(dev *simt.Device) *Stats {
	return &Stats{
		KernelCycles: make(map[string]int64),
		width:        dev.WavefrontWidth,
	}
}

func (s *Stats) charge(rr *simt.RunResult, keepWavefronts bool) {
	s.Cycles += rr.Cycles()
	s.KernelCycles[rr.Stats.Name] += rr.Cycles()
	s.Steals += rr.Sched.Steals
	busy, busyMax := rr.Stats.BusyParts()
	s.busySum += busy
	s.busyMaxSum += busyMax
	if keepWavefronts {
		s.WavefrontWork = append(s.WavefrontWork, rr.Stats.WavefrontCost...)
	}
}

// csrBufs binds a graph's CSR arrays as device buffers.
type csrBufs struct {
	off, adj *simt.BufInt32
	n        int32
}

func bindCSR(dev *simt.Device, g *graph.Graph) csrBufs {
	return csrBufs{
		off: dev.BindInt32(g.Offsets()),
		adj: dev.BindInt32(g.Adj()),
		n:   int32(g.NumVertices()),
	}
}

// sortWorklist models order-preserving compaction for the atomic-append
// worklists used here (see gpucolor for the rationale).
func sortWorklist(wl *simt.BufInt32, count int) {
	slices.Sort(wl.Data()[:count])
}
