// Quickstart: generate a scale-free graph, color it with every GPU
// algorithm on the simulated device, and compare quality and simulated time.
package main

import (
	"fmt"
	"log"

	"gcolor"
)

func main() {
	// A scale-free graph: 4096 vertices, ~16 edges per vertex, hubs at low
	// ids — the workload class where load imbalance bites.
	g := gcolor.RMAT(12, 16, 1)
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	fmt.Printf("%-14s %14s %11s %8s %10s\n", "algorithm", "cycles", "iterations", "colors", "SIMD util")
	for _, alg := range []gcolor.Algorithm{
		gcolor.AlgBaseline, gcolor.AlgMaxMin, gcolor.AlgJP,
		gcolor.AlgSpeculative, gcolor.AlgHybrid, gcolor.AlgHybridMaxMin, gcolor.AlgHybridJP,
	} {
		dev := gcolor.NewDevice()
		res, err := gcolor.ColorGPU(dev, g, alg, gcolor.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if err := gcolor.Verify(g, res.Colors); err != nil {
			log.Fatalf("%v produced an invalid coloring: %v", alg, err)
		}
		fmt.Printf("%-14s %14d %11d %8d %10.3f\n",
			alg, res.Cycles, res.Iterations, res.NumColors, res.SIMDUtilization())
	}

	// CPU reference: sequential greedy first-fit.
	greedy := gcolor.ColorGreedy(g, gcolor.Natural, 0)
	fmt.Printf("\ncpu greedy first-fit: %d colors\n", gcolor.NumColors(greedy))
}
