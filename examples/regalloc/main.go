// Regalloc: graph coloring as a register allocator — the classic compiler
// application of the paper's building block. Virtual registers with
// overlapping live ranges interfere; a K-coloring of the interference graph
// is a spill-free assignment to K machine registers. When the coloring
// needs more than K colors, the highest-degree nodes are spilled
// (Chaitin-style, simplified) and the residual graph is recolored.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"gcolor"
	"gcolor/internal/graph"
)

// liveRange is a virtual register alive over [start, end).
type liveRange struct{ start, end int }

func main() {
	const (
		numVRegs = 2000
		progLen  = 5000
		K        = 16 // machine registers
	)
	rng := rand.New(rand.NewSource(7))

	// Synthesize live ranges: mostly short, a few long-lived values.
	ranges := make([]liveRange, numVRegs)
	for i := range ranges {
		start := rng.Intn(progLen)
		length := rng.Intn(40) + 2
		if rng.Intn(20) == 0 {
			length = rng.Intn(progLen / 2) // long-lived
		}
		end := start + length
		if end > progLen {
			end = progLen
		}
		ranges[i] = liveRange{start, end}
	}

	// Interference graph: overlapping ranges, built with a sweep.
	g := buildInterference(ranges)
	fmt.Printf("interference graph: %d vregs, %d interferences, max degree %d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())
	fmt.Printf("max simultaneous liveness (lower bound on registers): %d\n", maxOverlap(ranges))

	// Color on the simulated GPU; speculative first-fit gives the fewest
	// colors of the GPU algorithms.
	dev := gcolor.NewDevice()
	res, err := gcolor.ColorGPU(dev, g, gcolor.AlgSpeculative, gcolor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gpu coloring: %d colors in %d rounds, %d simulated cycles\n",
		res.NumColors, res.Iterations, res.Cycles)

	// Spill until the residual graph is K-colorable.
	colors := res.Colors
	spilled := map[int32]bool{}
	for gcolor.NumColors(colors) > K {
		v := worstUnspilled(g, colors, spilled, K)
		spilled[v] = true
		colors = recolorWithout(dev, g, spilled)
	}
	fmt.Printf("with %d machine registers: %d values spilled to memory (%.1f%%)\n",
		K, len(spilled), 100*float64(len(spilled))/float64(numVRegs))

	// Verify the final assignment: no two interfering unspilled vregs share
	// a register.
	for v := 0; v < g.NumVertices(); v++ {
		if spilled[int32(v)] {
			continue
		}
		for _, u := range g.Neighbors(int32(v)) {
			if !spilled[u] && colors[u] == colors[v] {
				log.Fatalf("register clash between v%d and v%d", v, u)
			}
		}
	}
	fmt.Println("final register assignment verified: no interfering values share a register")
}

// buildInterference connects live ranges that overlap, using an
// event-sweep so dense programs stay quadratic only in the overlap.
func buildInterference(ranges []liveRange) *gcolor.Graph {
	b := graph.NewBuilder(len(ranges))
	type event struct {
		pos, kind, id int // kind: 0 = start, 1 = end
	}
	var events []event
	for i, r := range ranges {
		events = append(events, event{r.start, 0, i}, event{r.end, 1, i})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].pos != events[j].pos {
			return events[i].pos < events[j].pos
		}
		return events[i].kind > events[j].kind // ends before starts at same pos
	})
	live := map[int]bool{}
	for _, e := range events {
		if e.kind == 1 {
			delete(live, e.id)
			continue
		}
		for other := range live {
			b.AddEdge(int32(e.id), int32(other))
		}
		live[e.id] = true
	}
	return b.Build()
}

func maxOverlap(ranges []liveRange) int {
	depth := map[int]int{}
	for _, r := range ranges {
		depth[r.start]++
		depth[r.end]--
	}
	points := make([]int, 0, len(depth))
	for p := range depth {
		points = append(points, p)
	}
	sort.Ints(points)
	cur, max := 0, 0
	for _, p := range points {
		cur += depth[p]
		if cur > max {
			max = cur
		}
	}
	return max
}

// worstUnspilled picks the spill candidate: the unspilled vreg with the most
// unspilled interferences among those holding an out-of-range color.
func worstUnspilled(g *gcolor.Graph, colors []int32, spilled map[int32]bool, k int) int32 {
	best, bestDeg := int32(-1), -1
	for v := 0; v < g.NumVertices(); v++ {
		if spilled[int32(v)] || colors[v] < int32(k) {
			continue
		}
		deg := 0
		for _, u := range g.Neighbors(int32(v)) {
			if !spilled[u] {
				deg++
			}
		}
		if deg > bestDeg {
			best, bestDeg = int32(v), deg
		}
	}
	return best
}

// recolorWithout recolors the graph with the spilled vertices removed.
func recolorWithout(dev *gcolor.Device, g *gcolor.Graph, spilled map[int32]bool) []int32 {
	// Rebuild the residual graph with original ids preserved.
	b := graph.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		if spilled[int32(v)] {
			continue
		}
		for _, u := range g.Neighbors(int32(v)) {
			if int32(v) < u && !spilled[u] {
				b.AddEdge(int32(v), u)
			}
		}
	}
	res, err := gcolor.ColorGPU(dev, b.Build(), gcolor.AlgSpeculative, gcolor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return res.Colors
}
