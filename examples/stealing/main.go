// Stealing: demonstrate the paper's two load-balance techniques on a
// hub-heavy graph — work-stealing workgroup scheduling (inter-CU balance)
// and the hybrid degree-split algorithm (intra-wavefront balance) — and show
// the per-compute-unit load they fix.
package main

import (
	"fmt"
	"log"
	"strings"

	"gcolor/internal/gen"
	"gcolor/internal/gpucolor"
	"gcolor/internal/metrics"
	"gcolor/internal/simt"
)

func main() {
	g := gen.RMAT(13, 16, gen.Graph500, 1)
	fmt.Printf("graph: %d vertices, %d edges, max degree %d (hubs at low ids)\n\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	type config struct {
		name   string
		policy simt.Policy
		hybrid bool
	}
	configs := []config{
		{"baseline/static", simt.Static, false},
		{"baseline/stealing", simt.Stealing, false},
		{"hybrid/static", simt.Static, true},
		{"hybrid/stealing", simt.Stealing, true},
	}

	var baseCycles int64
	for _, c := range configs {
		dev := simt.NewDevice()
		dev.WorkgroupSize = 64 // fine-grained tasks so stealing can act
		dev.Policy = c.policy
		var res *gpucolor.Result
		var err error
		if c.hybrid {
			res, err = gpucolor.Hybrid(dev, g, gpucolor.Options{})
		} else {
			res, err = gpucolor.Baseline(dev, g, gpucolor.Options{})
		}
		if err != nil {
			log.Fatal(err)
		}
		if baseCycles == 0 {
			baseCycles = res.Cycles
		}
		cu := metrics.SummarizeInt64(res.CUBusy)
		fmt.Printf("%-18s %14d cycles  %+6.1f%%  CU max/mean %.2f  steals %d\n",
			c.name, res.Cycles,
			metrics.PercentImprovement(float64(baseCycles), float64(res.Cycles)),
			cu.MaxOverMean, res.Steals)

		// Per-CU load bars for the two baseline schedules.
		if !c.hybrid {
			fmt.Println(loadBars(res.CUBusy))
		}
	}
	fmt.Println("Reading: static scheduling piles the hub-dense workgroups onto the")
	fmt.Println("first CUs (top bars); stealing levels the per-CU load; the hybrid")
	fmt.Println("removes the hub serialization itself and stacks with stealing.")
}

// loadBars renders per-CU busy cycles as proportional bars.
func loadBars(cuBusy []int64) string {
	var max int64 = 1
	for _, b := range cuBusy {
		if b > max {
			max = b
		}
	}
	var sb strings.Builder
	for i, b := range cuBusy {
		fmt.Fprintf(&sb, "  CU%02d %s\n", i, strings.Repeat("#", int(40*b/max)))
	}
	return sb.String()
}
