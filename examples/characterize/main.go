// Characterize: reproduce the paper's program-behaviour study in miniature —
// how graph structure (degree variance) turns into SIMT load imbalance and
// lost SIMD utilization. Compare a regular mesh, a uniform random graph,
// and a scale-free graph on identical hardware.
package main

import (
	"fmt"
	"log"

	"gcolor/internal/gen"
	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
	"gcolor/internal/metrics"
	"gcolor/internal/simt"
)

func main() {
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid2d (mesh)", gen.Grid2D(64, 64)},
		{"gnm (uniform)", gen.GNM(4096, 4096*12, 3)},
		{"rmat (scale-free)", gen.RMAT(12, 16, gen.Graph500, 1)},
	}

	fmt.Printf("%-20s %8s %9s %12s %10s %10s\n",
		"graph", "deg-CV", "max/avg", "wf max/mean", "SIMD util", "cycles/edge")
	for _, w := range workloads {
		dev := simt.NewDevice()
		res, err := gpucolor.Baseline(dev, w.g, gpucolor.Options{})
		if err != nil {
			log.Fatal(err)
		}
		st := w.g.Stats()
		wf := metrics.SummarizeInt64(res.WavefrontWork)
		fmt.Printf("%-20s %8.2f %9.1f %12.1f %10.3f %11.1f\n",
			w.name, st.CV, st.MaxOverAvg, wf.MaxOverMean,
			res.SIMDUtilization(), float64(res.Cycles)/float64(w.g.NumEdges()))
	}

	fmt.Println("\nReading: the degree distribution's tail (max/avg) is the direct")
	fmt.Println("cause of wavefront imbalance (wf max/mean) and of low SIMD")
	fmt.Println("utilization — the mesh keeps every lane busy, the scale-free")
	fmt.Println("graph leaves wavefronts idling behind hub lanes.")

	// Per-wavefront work histogram for the scale-free case.
	dev := simt.NewDevice()
	res, err := gpucolor.Baseline(dev, workloads[2].g, gpucolor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var h metrics.Histogram
	for _, wk := range res.WavefrontWork {
		h.Add(wk)
	}
	fmt.Println("\nper-wavefront cycles, scale-free graph (log2 buckets):")
	fmt.Print(h.String())
}
