// Sweepsolver: the motivating application class from the paper's
// introduction — graph coloring as the first step of a parallel computation.
// A Gauss–Seidel smoother updates each vertex from its neighbours' *latest*
// values, which is inherently sequential; coloring the unknowns first makes
// every color class an independent set whose vertices can be updated in
// parallel without races (multi-color Gauss–Seidel).
//
// We solve (L + I) x = b on a 2-D grid Laplacian, comparing sequential
// Gauss–Seidel with the colored parallel version, and verify both reach the
// same fixed point.
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"gcolor"
)

func main() {
	const rows, cols = 96, 96
	g := gcolor.Grid2D(rows, cols)
	n := g.NumVertices()

	// Color on the simulated GPU: the grid is 2-colorable (red-black
	// ordering), and the hybrid algorithm finds a small coloring fast.
	dev := gcolor.NewDevice()
	res, err := gcolor.ColorGPU(dev, g, gcolor.AlgHybrid, gcolor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %dx%d colored with %d colors in %d simulated cycles\n",
		rows, cols, res.NumColors, res.Cycles)

	// Group vertices by color: each class is an independent set.
	classes := make([][]int32, res.NumColors)
	for v := 0; v < n; v++ {
		c := res.Colors[v]
		classes[c] = append(classes[c], int32(v))
	}

	b := make([]float64, n)
	for v := range b {
		b[v] = 1
	}
	update := func(x []float64, v int32) {
		sum := b[v]
		for _, u := range g.Neighbors(v) {
			sum += x[u]
		}
		x[v] = sum / float64(g.Degree(v)+1)
	}

	// Sequential Gauss–Seidel.
	seq := make([]float64, n)
	const sweeps = 60
	for s := 0; s < sweeps; s++ {
		for v := 0; v < n; v++ {
			update(seq, int32(v))
		}
	}

	// Multi-color Gauss–Seidel: classes in order, vertices within a class in
	// parallel. No two vertices in a class are adjacent, so updates never
	// read a value being written.
	par := make([]float64, n)
	workers := 4
	for s := 0; s < sweeps; s++ {
		for _, class := range classes {
			var wg sync.WaitGroup
			chunk := (len(class) + workers - 1) / workers
			for lo := 0; lo < len(class); lo += chunk {
				hi := min(lo+chunk, len(class))
				wg.Add(1)
				go func(part []int32) {
					defer wg.Done()
					for _, v := range part {
						update(par, v)
					}
				}(class[lo:hi])
			}
			wg.Wait()
		}
	}

	// Both iterations converge to the same fixed point of (L+I)x = b.
	residual := func(x []float64) float64 {
		worst := 0.0
		for v := 0; v < n; v++ {
			sum := b[v]
			for _, u := range g.Neighbors(int32(v)) {
				sum += x[u]
			}
			r := math.Abs(x[v] - sum/float64(g.Degree(int32(v))+1))
			if r > worst {
				worst = r
			}
		}
		return worst
	}
	diff := 0.0
	for v := range seq {
		if d := math.Abs(seq[v] - par[v]); d > diff {
			diff = d
		}
	}
	fmt.Printf("after %d sweeps: sequential residual %.2e, colored-parallel residual %.2e\n",
		sweeps, residual(seq), residual(par))
	fmt.Printf("max difference between the two solutions: %.2e\n", diff)
	if diff > 1e-6 {
		log.Fatal("colored parallel Gauss-Seidel diverged from sequential result")
	}
	fmt.Println("colored parallel Gauss-Seidel matches the sequential solver: the")
	fmt.Println("coloring made the sweep safely parallel.")
}
