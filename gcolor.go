// Package gcolor is a Go reproduction of "Graph Coloring on the GPU and Some
// Techniques to Improve Load Imbalance" (Che, Rodgers, Beckmann, Reinhardt;
// IPDPSW 2015). It couples GPU graph-coloring algorithms — the iterative
// independent-set baseline, colorMaxMin, speculative first-fit, a
// work-stealing workgroup scheduler, and the degree-split hybrid — with a
// deterministic SIMT GPU simulator that stands in for the paper's Radeon
// HD 7950, plus CPU reference algorithms, synthetic graph generators, and
// the experiment harness that regenerates every table and figure.
//
// This package is the stable facade over the implementation packages:
//
//	g := gcolor.RMAT(14, 16, 1)                  // a scale-free graph
//	dev := gcolor.NewDevice()                    // an HD 7950-like device
//	res, err := gcolor.ColorGPU(dev, g, gcolor.AlgHybrid, gcolor.Options{})
//	// res.Colors, res.NumColors, res.Cycles, res.SIMDUtilization(), ...
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// recorded paper-versus-measured results.
package gcolor

import (
	"context"
	"io"
	"net/http"
	"time"

	"gcolor/internal/cluster"
	"gcolor/internal/color"
	"gcolor/internal/exp"
	"gcolor/internal/gen"
	"gcolor/internal/gpuapps"
	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
	"gcolor/internal/journal"
	"gcolor/internal/serve"
	"gcolor/internal/shard"
	"gcolor/internal/simt"
)

// Graph is an undirected graph in CSR form (see internal/graph).
type Graph = graph.Graph

// Device is a simulated SIMT GPU (see internal/simt).
type Device = simt.Device

// Policy selects the workgroup scheduling policy of a Device.
type Policy = simt.Policy

// Scheduling policies.
const (
	Static     = simt.Static
	RoundRobin = simt.RoundRobin
	Stealing   = simt.Stealing
)

// NewDevice returns a device with Radeon HD 7950-like defaults: 28 compute
// units, 64-lane wavefronts, 256-item workgroups, static scheduling.
func NewDevice() *Device { return simt.NewDevice() }

// Algorithm names a GPU coloring algorithm.
type Algorithm = gpucolor.Algorithm

// GPU coloring algorithms.
const (
	AlgBaseline     = gpucolor.AlgBaseline
	AlgMaxMin       = gpucolor.AlgMaxMin
	AlgJP           = gpucolor.AlgJP
	AlgSpeculative  = gpucolor.AlgSpeculative
	AlgHybrid       = gpucolor.AlgHybrid
	AlgHybridMaxMin = gpucolor.AlgHybridMaxMin
	AlgHybridJP     = gpucolor.AlgHybridJP
)

// Options configures a GPU coloring run.
type Options = gpucolor.Options

// Result is the outcome of a GPU coloring run: the coloring plus the
// simulated performance evidence.
type Result = gpucolor.Result

// ColorGPU colors g on the simulated device with the chosen algorithm.
func ColorGPU(dev *Device, g *Graph, a Algorithm, opt Options) (*Result, error) {
	return gpucolor.Color(dev, g, a, opt)
}

// Resilient execution and fault injection (see internal/simt and
// internal/gpucolor for the full story).

// FaultInjector deterministically injects GPU faults (bit flips on reads,
// spurious CAS failures, wavefront aborts, workgroup stalls) into a Device;
// assign one to Device.Fault to arm it. A nil injector costs nothing.
type FaultInjector = simt.FaultInjector

// FaultStats counts the faults an injector has delivered.
type FaultStats = simt.FaultStats

// NewFaultInjector returns an injector applying rate to every fault class.
func NewFaultInjector(seed uint64, rate float64) *FaultInjector {
	return simt.NewFaultInjector(seed, rate)
}

// ResilientOptions configures ColorGPUContext.
type ResilientOptions = gpucolor.ResilientOptions

// Outcome is a resilient run's verified result plus recovery evidence.
type Outcome = gpucolor.Outcome

// RecoveryLevel records which recovery rung produced an Outcome.
type RecoveryLevel = gpucolor.RecoveryLevel

// Recovery rungs, cheapest first.
const (
	RecoveryNone   = gpucolor.RecoveryNone
	RecoveryRepair = gpucolor.RecoveryRepair
	RecoveryRetry  = gpucolor.RecoveryRetry
	RecoveryCPU    = gpucolor.RecoveryCPU
)

// Typed failures of the resilient driver, for errors.Is / errors.As.
var (
	ErrMaxIterations  = gpucolor.ErrMaxIterations
	ErrWatchdog       = gpucolor.ErrWatchdog
	ErrBudgetExceeded = gpucolor.ErrBudgetExceeded
)

// FaultError wraps a failure that happened under an armed fault injector.
type FaultError = gpucolor.FaultError

// InvalidColoringError reports a run whose coloring failed verification.
type InvalidColoringError = gpucolor.InvalidColoringError

// ColorGPUContext colors g under the resilient recovery ladder
// (validate, repair, retry, CPU fallback): it always returns a verified
// proper coloring or a typed error, honours ctx at iteration boundaries,
// and tolerates an armed fault injector on dev.
func ColorGPUContext(ctx context.Context, dev *Device, g *Graph, a Algorithm, opt ResilientOptions) (*Outcome, error) {
	return gpucolor.ColorContext(ctx, dev, g, a, opt)
}

// Sharded multi-device execution (see internal/shard): the graph is split
// into K edge-balanced shards, colored in parallel on separate devices
// through the resilient ladder, and reconciled with a bounded boundary
// repair loop. The result is always a verified proper coloring.

// ShardOptions configures a sharded coloring run (shard count, seed,
// repair budget, fallback policy).
type ShardOptions = shard.Options

// ShardResult is a sharded run's verified global coloring plus the
// partition and boundary-repair evidence.
type ShardResult = shard.Result

// ShardRepairStats records the boundary reconciliation work of a
// sharded run: conflicts found, repair rounds, vertices recolored, and
// whether the CPU-greedy fallback fired.
type ShardRepairStats = shard.RepairStats

// ErrShardRepairBudget reports that boundary repair hit its round budget
// with conflicts remaining and the fallback was disabled.
var ErrShardRepairBudget = shard.ErrRepairBudget

// ColorShardedDevices colors g split across devs — shard i on
// devs[i % len(devs)] — and reconciles the parts. opt.K == 0 uses one
// shard per device.
func ColorShardedDevices(ctx context.Context, devs []*Device, g *Graph, a Algorithm, opt ShardOptions, ropt ResilientOptions) (*ShardResult, error) {
	return shard.ColorDevices(ctx, devs, g, a, opt, ropt)
}

// ShardConfig tunes a Server's sharded scatter-gather execution: forced
// or automatic shard counts and the size thresholds that trigger
// auto-sharding. The zero value enables sharding with defaults.
type ShardConfig = serve.ShardConfig

// HandlerConfig tunes the HTTP surface (request body size limit).
type HandlerConfig = serve.HandlerConfig

// ServeHandler is a Server's HTTP surface — the gcolord wire contract
// (POST /color, /healthz, /metricsz, ...). A Server exposed this way can
// join a Coordinator's fleet as a worker.
func ServeHandler(s *Server) http.Handler { return serve.Handler(s) }

// Uncolored is the sentinel value of an unassigned vertex color.
const Uncolored = color.Uncolored

// Verify checks that colors is a proper coloring of g.
func Verify(g *Graph, colors []int32) error { return color.Verify(g, colors) }

// NumColors returns the number of colors used by a dense coloring.
func NumColors(colors []int32) int { return color.NumColors(colors) }

// Ordering selects the vertex order of the sequential greedy algorithm.
type Ordering = color.Ordering

// Greedy orderings.
const (
	Natural      = color.Natural
	LargestFirst = color.LargestFirst
	SmallestLast = color.SmallestLast
	RandomOrder  = color.RandomOrder
)

// ColorGreedy colors g sequentially with first-fit under the given ordering
// (the CPU baseline).
func ColorGreedy(g *Graph, o Ordering, seed int64) []int32 {
	return color.Greedy(g, o, seed)
}

// ColorJonesPlassmann colors g with the parallel Jones–Plassmann algorithm
// on the host CPU; workers <= 0 uses GOMAXPROCS.
func ColorJonesPlassmann(g *Graph, seed uint32, workers int) []int32 {
	return color.JonesPlassmann(g, seed, workers).Colors
}

// Generators (deterministic; see internal/gen for the full set).

// RMAT generates a scale-free R-MAT graph with 2^scale vertices and about
// edgeFactor*2^scale edges using Graph500 parameters.
func RMAT(scale, edgeFactor int, seed int64) *Graph {
	return gen.RMAT(scale, edgeFactor, gen.Graph500, seed)
}

// RandomGraph generates a uniform Erdős–Rényi G(n,m) graph.
func RandomGraph(n, m int, seed int64) *Graph { return gen.GNM(n, m, seed) }

// Grid2D generates a rows x cols 4-point mesh.
func Grid2D(rows, cols int) *Graph { return gen.Grid2D(rows, cols) }

// ReadGraph parses a graph in edge-list format from r.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph writes g in edge-list format to w.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Companion irregular workloads (see internal/gpuapps): they share the
// simulator and exhibit the same load-imbalance behaviour as coloring.

// BFSLevels runs a breadth-first search from src on the simulated device
// and returns hop distances (-1 for unreachable vertices).
func BFSLevels(dev *Device, g *Graph, src int32) ([]int32, error) {
	res, err := gpuapps.BFS(dev, g, src)
	if err != nil {
		return nil, err
	}
	return res.Levels, nil
}

// PageRankScores runs pull-style PageRank on the simulated device with
// default damping/tolerance and returns the converged ranks.
func PageRankScores(dev *Device, g *Graph) []float32 {
	return gpuapps.PageRank(dev, g, gpuapps.PageRankOptions{}).Ranks
}

// ComponentLabels labels each vertex with the minimum vertex id of its
// connected component, computed on the simulated device.
func ComponentLabels(dev *Device, g *Graph) []int32 {
	return gpuapps.ConnectedComponents(dev, g).Labels
}

// Serving layer (see internal/serve): the engine behind cmd/gcolord — a
// pool of simulated devices, a bounded priority queue with admission
// control, singleflight request coalescing, and an LRU result cache —
// embeddable in-process without the HTTP surface.

// Server is an in-process coloring service over a device pool.
type Server = serve.Server

// ServeConfig sizes a Server: pool width, device geometry, queue
// capacity, shed threshold, cache entries, executor count.
type ServeConfig = serve.Config

// ServeRequest is one coloring job: the graph plus per-job policy
// (algorithm, seed, scheduler, resilience knobs, priority, cacheability).
type ServeRequest = serve.Request

// ServeResponse is a completed job: the coloring plus serving evidence
// (cache/coalesce flags, device index, queue wait, execution time).
type ServeResponse = serve.Response

// ServePriority orders jobs in the admission queue.
type ServePriority = serve.Priority

// Admission priorities. Low and Normal work is shed under load; High
// work is only refused when the queue is completely full.
const (
	PriorityLow    = serve.PriorityLow
	PriorityNormal = serve.PriorityNormal
	PriorityHigh   = serve.PriorityHigh
)

// Typed admission failures of a Server, for errors.Is.
var (
	ErrQueueFull    = serve.ErrQueueFull
	ErrShedding     = serve.ErrShedding
	ErrServerClosed = serve.ErrClosed
	// ErrServerDraining wraps ErrServerClosed: new work refused while
	// queued work finishes.
	ErrServerDraining = serve.ErrDraining
	// ErrDeadlineInQueue marks a job whose context expired before any
	// device picked it up; it wraps the context's own error.
	ErrDeadlineInQueue = serve.ErrDeadlineInQueue
)

// SelfHealConfig tunes per-device health scoring, circuit breakers,
// and hedged re-dispatch. The zero value enables self-healing with
// defaults; set Disabled to opt out.
type SelfHealConfig = serve.SelfHealConfig

// DrainSummary reports what happened during a graceful drain.
type DrainSummary = serve.DrainSummary

// DrainTimeoutError is returned by Server.Drain when queued work could
// not finish within the timeout; unfinished jobs are handed back to
// their callers with ErrServerDraining.
type DrainTimeoutError = serve.DrainTimeoutError

// NewServer starts a Server; call Stop to drain and release it.
func NewServer(cfg ServeConfig) *Server { return serve.NewServer(cfg) }

// Durability (see internal/journal): a write-ahead journal makes a Server
// crash-safe — accepted jobs are journaled before they are queued and
// replayed on restart, completed results warm-start the result cache, and
// client Idempotency-Keys dedupe retries across the crash.

// Journal is an append-only, checksummed, segment-rotated write-ahead log.
type Journal = journal.Journal

// JournalOptions tunes segment size, fsync policy, and compaction.
type JournalOptions = journal.Options

// JournalRecovery is what replaying a journal directory found: pending
// accepted jobs to re-execute plus completed results to warm caches from.
// Pass it (with the Journal) into ServeConfig to recover a Server.
type JournalRecovery = journal.Recovery

// JournalReplayStats describes a journal scan: segments read, torn tails
// truncated, corrupt segments skipped, record counts.
type JournalReplayStats = journal.ReplayStats

// JournalStats is a live journal's counters (appends, fsyncs, rotations,
// compactions, live segments).
type JournalStats = journal.Stats

// FsyncMode selects journal durability: per-append, batched group commit,
// or OS-paced.
type FsyncMode = journal.FsyncMode

// Journal fsync modes.
const (
	FsyncBatch  = journal.FsyncBatch
	FsyncAlways = journal.FsyncAlways
	FsyncNone   = journal.FsyncNone
)

// OpenJournal opens (or creates) a journal directory and replays whatever
// it holds. Replay never fails on torn or corrupt records — the damage is
// truncated, counted in the returned recovery's stats, and the journal
// continues in a fresh segment.
func OpenJournal(dir string, opt JournalOptions) (*Journal, *JournalRecovery, error) {
	return journal.Open(dir, opt)
}

// RecoveryInfo reports a recovered Server's warm-start and replay
// progress (the programmatic form of gcolord's GET /recoveryz).
type RecoveryInfo = serve.RecoveryInfo

// Distributed fleet (see internal/cluster): a coordinator fronting many
// gcolord workers — rendezvous-hash routing of whole graphs, edge-balanced
// scatter-gather of large ones with boundary repair at the coordinator,
// per-worker health scores and circuit breakers, bounded re-dispatch on
// mid-job worker failure, and the same journal-backed crash safety as a
// single Server.

// Coordinator fronts a fleet of gcolord workers.
type Coordinator = cluster.Coordinator

// ClusterConfig sizes a Coordinator: static peers, membership probing,
// scatter thresholds, failover budgets, cache sizes, journaling.
type ClusterConfig = cluster.Config

// ClusterStats snapshots a Coordinator: job/routing/failover counters,
// cache state, and per-worker membership detail.
type ClusterStats = cluster.Stats

// ClusterMemberInfo is one worker's membership view (address, liveness,
// health score, breaker state, job counts).
type ClusterMemberInfo = cluster.MemberInfo

// ClusterWorkerError is a typed failure of one worker call; Retryable
// reports whether the coordinator may fail the job over.
type ClusterWorkerError = cluster.WorkerError

// ClusterShardError reports a shard sub-job that exhausted its bounded
// re-dispatch attempts during scatter-gather.
type ClusterShardError = cluster.ShardError

// ErrNoClusterWorkers is returned when no live, non-excluded worker
// remains for a job.
var ErrNoClusterWorkers = cluster.ErrNoWorkers

// NewCoordinator starts a Coordinator; call Close to stop its membership
// probing. Workers are plain gcolord servers — no special build.
func NewCoordinator(cfg ClusterConfig) *Coordinator { return cluster.NewCoordinator(cfg) }

// ClusterHandler is the Coordinator's HTTP surface: the same POST /color
// contract as a single gcolord plus /clusterz, /cluster/join, /metricsz.
func ClusterHandler(c *Coordinator) http.Handler { return cluster.Handler(c) }

// NewClusterWorkerClient returns the pooled keep-alive HTTP client a
// Coordinator uses for worker calls, sized for conc in-flight jobs.
func NewClusterWorkerClient(timeout time.Duration, conc int) *http.Client {
	return cluster.NewWorkerClient(timeout, conc)
}

// JoinCluster announces a worker to a coordinator and keeps re-announcing
// every interval until ctx is canceled — the worker side of dynamic
// membership. A nil client uses http.DefaultClient.
func JoinCluster(ctx context.Context, client *http.Client, coordinatorURL, advertiseAddr string, interval time.Duration) error {
	return cluster.JoinLoop(ctx, client, coordinatorURL, advertiseAddr, interval)
}

// ParseGraphSpec builds a deterministic synthetic graph from a compact
// spec like "rmat:14:16:1", "gnm:10000:50000", or "grid:64:64".
func ParseGraphSpec(spec string) (*Graph, error) { return serve.ParseGraphSpec(spec) }

// Fingerprint returns g's stable 64-bit content fingerprint: equal for
// any two graphs with identical adjacency structure regardless of edge
// insertion order, across runs and platforms. It keys the result cache.
func Fingerprint(g *Graph) uint64 { return g.Fingerprint() }

// FingerprintString formats a fingerprint as fixed-width hex.
func FingerprintString(fp uint64) string { return graph.FingerprintString(fp) }

// RunExperiment executes one of the paper's reconstructed experiments
// ("T1", "F1".."F9", ablations "A1".."A6", extensions "X1".."X5") at full
// scale and writes its tables to w.
func RunExperiment(id string, w io.Writer) error {
	tables, err := exp.Run(id, exp.Config{Scale: exp.Full})
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}
