module gcolor

go 1.22
